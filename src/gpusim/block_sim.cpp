#include "gpusim/block_sim.hpp"

#include <algorithm>
#include <cassert>

#include "support/strings.hpp"

namespace oa::gpusim {

BlockSim::BlockSim(const CompiledKernel& kernel, const DeviceModel& device,
                   bool functional, GlobalBuffers* buffers)
    : k_(kernel), dev_(device), functional_(functional), buffers_(buffers) {
  global_ptr_.resize(k_.arrays.size(), nullptr);
  shared_.resize(k_.arrays.size());
  registers_.resize(k_.arrays.size());
}

Status BlockSim::run(int64_t by, int64_t bx, int lane_begin, int lane_end,
                     Counters& out) {
  nlanes_ = lane_end - lane_begin;
  lane_begin_ = lane_begin;
  const int64_t threads = k_.launch.threads_per_block();
  if (functional_ && (lane_begin != 0 || lane_end != threads)) {
    return internal_error("functional runs must simulate the whole block");
  }

  slots_.assign(static_cast<size_t>(nlanes_) * k_.num_slots, 0);
  reuse_addr_.assign(
      static_cast<size_t>(k_.num_sites) * static_cast<size_t>(nlanes_), -1);
  if (dev_.coalescing == CoalescingModel::kFermi) {
    line_addr_.assign(
        static_cast<size_t>(k_.num_sites) * static_cast<size_t>(nlanes_),
        -1);
  }
  scratch_addr_.assign(static_cast<size_t>(nlanes_), 0);
  counters_ = Counters{};

  // Bind array storage.
  for (size_t a = 0; a < k_.arrays.size(); ++a) {
    const CArray& arr = k_.arrays[a];
    switch (arr.space) {
      case ir::MemSpace::kGlobal:
        if (functional_) {
          std::vector<float>* buf =
              buffers_ != nullptr ? buffers_->find(arr.name) : nullptr;
          if (buf == nullptr ||
              buf->size() < static_cast<size_t>(arr.elements)) {
            return internal_error("global buffer '" + arr.name +
                                  "' missing or undersized");
          }
          global_ptr_[a] = buf->data();
        }
        break;
      case ir::MemSpace::kShared:
        if (functional_) {
          shared_[a].assign(static_cast<size_t>(arr.elements), 0.0f);
        }
        break;
      case ir::MemSpace::kRegister:
        if (functional_) {
          registers_[a].assign(
              static_cast<size_t>(arr.elements) * nlanes_, 0.0f);
        }
        break;
    }
  }

  // Bind block / thread index slots per lane.
  for (int lane = 0; lane < nlanes_; ++lane) {
    int64_t* s = lane_slots(lane);
    const int64_t abs_lane = lane_begin_ + lane;
    const int64_t tx = abs_lane % k_.launch.block_x;
    const int64_t ty = abs_lane / k_.launch.block_x;
    if (k_.block_y_slot >= 0) s[k_.block_y_slot] = by;
    if (k_.block_x_slot >= 0) s[k_.block_x_slot] = bx;
    if (k_.thread_y_slot >= 0) s[k_.thread_y_slot] = ty;
    if (k_.thread_x_slot >= 0) s[k_.thread_x_slot] = tx;
  }

  std::vector<uint8_t> mask(static_cast<size_t>(nlanes_), 1);
  OA_RETURN_IF_ERROR(exec(k_.body, mask));
  out += counters_;
  return Status::ok();
}

int64_t BlockSim::addr_of(const CRef& ref, int lane, Status& status) const {
  const int64_t* s = lane_slots(lane);
  const int64_t r = ref.row.eval(s);
  const int64_t c = ref.col.eval(s);
  const CArray& arr = k_.arrays[static_cast<size_t>(ref.array)];
  if (r < 0 || r >= arr.rows || c < 0 || c >= arr.cols) {
    if (status.is_ok()) {
      status = internal_error(str_format(
          "out-of-bounds access to %s: (%lld, %lld) not in %lldx%lld",
          arr.name.c_str(), static_cast<long long>(r),
          static_cast<long long>(c), static_cast<long long>(arr.rows),
          static_cast<long long>(arr.cols)));
    }
    return 0;
  }
  return r + c * arr.ld;
}

float BlockSim::load_value(const CRef& ref, int lane, int64_t addr) const {
  const CArray& arr = k_.arrays[static_cast<size_t>(ref.array)];
  switch (arr.space) {
    case ir::MemSpace::kGlobal:
      return global_ptr_[static_cast<size_t>(ref.array)][addr];
    case ir::MemSpace::kShared:
      return shared_[static_cast<size_t>(ref.array)]
                    [static_cast<size_t>(addr)];
    case ir::MemSpace::kRegister:
      return registers_[static_cast<size_t>(ref.array)]
                       [static_cast<size_t>(addr) * nlanes_ + lane];
  }
  return 0.0f;
}

float BlockSim::eval_val(const CVal& v, int lane, Status& status) {
  switch (v.kind) {
    case CVal::Kind::kConst:
      return v.constant;
    case CVal::Kind::kRef: {
      const int64_t addr = addr_of(v.ref, lane, status);
      if (!status.is_ok()) return 0.0f;
      return load_value(v.ref, lane, addr);
    }
    case CVal::Kind::kNeg:
      return -eval_val(*v.a, lane, status);
    case CVal::Kind::kAdd:
      return eval_val(*v.a, lane, status) + eval_val(*v.b, lane, status);
    case CVal::Kind::kSub:
      return eval_val(*v.a, lane, status) - eval_val(*v.b, lane, status);
    case CVal::Kind::kMul:
      return eval_val(*v.a, lane, status) * eval_val(*v.b, lane, status);
    case CVal::Kind::kDiv:
      return eval_val(*v.a, lane, status) / eval_val(*v.b, lane, status);
  }
  return 0.0f;
}

int64_t BlockSim::distinct_chunks(const std::vector<uint8_t>& mask, int g0,
                                  int g1, int chunk_bytes, int site) const {
  // Distinct chunk_bytes-sized chunks touched by the active lanes of one
  // group (group size <= 32: linear scan over a stack array). When
  // `site` >= 0, a lane whose chunk equals its previous chunk at this
  // reference site is served by the cache (Fermi L1 line reuse) and
  // contributes nothing.
  int64_t chunks[32];
  int n = 0;
  for (int l = g0; l < g1; ++l) {
    if (!mask[static_cast<size_t>(l)]) continue;
    const int64_t chunk =
        scratch_addr_[static_cast<size_t>(l)] * 4 / chunk_bytes;
    if (site >= 0) {
      int64_t& last =
          line_addr_[static_cast<size_t>(site) * nlanes_ + l];
      if (last == chunk) continue;  // line still cached for this lane
      last = chunk;
    }
    bool seen = false;
    for (int i = 0; i < n; ++i) {
      if (chunks[i] == chunk) {
        seen = true;
        break;
      }
    }
    if (!seen) chunks[n++] = chunk;
  }
  return n;
}

Status BlockSim::process_ref(const CRef& ref, bool is_store,
                             const std::vector<uint8_t>& mask,
                             bool count_inst) {
  const CArray& arr = k_.arrays[static_cast<size_t>(ref.array)];
  Status status = Status::ok();

  // Collect addresses; apply the register-caching model for loads
  // (a lane whose address at this site is unchanged since the previous
  // execution costs nothing, like a value kept in a register by the
  // backend compiler).
  bool all_reused = !is_store;
  for (int lane = 0; lane < nlanes_; ++lane) {
    if (!mask[static_cast<size_t>(lane)]) continue;
    const int64_t addr = addr_of(ref, lane, status);
    scratch_addr_[static_cast<size_t>(lane)] = addr;
    if (!is_store) {
      int64_t& last =
          reuse_addr_[static_cast<size_t>(ref.site) * nlanes_ + lane];
      if (last != addr) {
        all_reused = false;
        last = addr;
      }
    }
  }
  OA_RETURN_IF_ERROR(status);
  if (all_reused) return Status::ok();  // register-cached

  const int group = arr.space == ir::MemSpace::kShared
                        ? dev_.shared_banks
                        : (dev_.coalescing == CoalescingModel::kFermi
                               ? dev_.warp_size
                               : dev_.warp_size / 2);

  for (int g0 = 0; g0 < nlanes_; g0 += group) {
    const int g1 = std::min(g0 + group, nlanes_);
    int active = 0;
    for (int l = g0; l < g1; ++l) active += mask[static_cast<size_t>(l)];
    if (active == 0) continue;

    switch (arr.space) {
      case ir::MemSpace::kRegister: {
        if (arr.spilled) {
          // Spilled register block: local-memory traffic.
          (is_store ? counters_.local_store : counters_.local_read) += 1;
          counters_.global_bytes += dev_.transaction_bytes;
        }
        break;
      }
      case ir::MemSpace::kShared: {
        // Bank-conflict analysis over the group; identical addresses
        // broadcast.
        (is_store ? counters_.shared_store : counters_.shared_load) += 1;
        int64_t bank_addr[32];
        int bank_count[32];
        for (int i = 0; i < dev_.shared_banks; ++i) {
          bank_addr[i] = -1;
          bank_count[i] = 0;
        }
        int degree = 1;
        for (int l = g0; l < g1; ++l) {
          if (!mask[static_cast<size_t>(l)]) continue;
          const int64_t addr = scratch_addr_[static_cast<size_t>(l)];
          const int b = static_cast<int>(addr % dev_.shared_banks);
          if (bank_count[b] == 0 || bank_addr[b] != addr) {
            // Distinct address on the same bank: serialized replay.
            bank_count[b] += 1;
            bank_addr[b] = addr;
          }
          degree = std::max(degree, bank_count[b]);
        }
        counters_.shared_bank_conflict_replays += degree - 1;
        break;
      }
      case ir::MemSpace::kGlobal: {
        switch (dev_.coalescing) {
          case CoalescingModel::kStrict: {
            // CC 1.0: lanes must access base + lane_offset in order,
            // 64B-aligned, all lanes of the half-warp participating.
            bool perfect = active == g1 - g0;
            int64_t base =
                scratch_addr_[static_cast<size_t>(g0)];
            if (perfect && base % (dev_.transaction_bytes / 4) != 0) {
              perfect = false;
            }
            for (int l = g0; perfect && l < g1; ++l) {
              if (scratch_addr_[static_cast<size_t>(l)] !=
                  base + (l - g0)) {
                perfect = false;
              }
            }
            if (perfect) {
              (is_store ? counters_.gst_coherent : counters_.gld_coherent) +=
                  1;
              counters_.global_bytes += dev_.transaction_bytes;
            } else {
              // Serialized: one transaction per participating thread.
              (is_store ? counters_.gst_incoherent
                        : counters_.gld_incoherent) += active;
              counters_.global_bytes += active * dev_.transaction_bytes;
            }
            break;
          }
          case CoalescingModel::kSegmented: {
            // CC 1.2/1.3: minimal set of 64B segments, but the hardware
            // shrinks half-used segments to 32B transfers — traffic is
            // counted at 32B granularity.
            const int64_t segs =
                distinct_chunks(mask, g0, g1, dev_.transaction_bytes, -1);
            (is_store ? counters_.gst_coherent : counters_.gld_coherent) +=
                segs;
            counters_.global_bytes +=
                32 * distinct_chunks(mask, g0, g1, 32, -1);
            break;
          }
          case CoalescingModel::kFermi: {
            (is_store ? counters_.gst_request : counters_.gld_request) += 1;
            // L1-cached 128B lines: a lane re-touching its previous line
            // (streaming along a column) hits in cache.
            const int64_t lines = distinct_chunks(
                mask, g0, g1, dev_.transaction_bytes,
                is_store ? -1 : ref.site);
            counters_.global_bytes += lines * dev_.transaction_bytes;
            break;
          }
        }
        // Memory instruction issue cost: one per warp per access.
        if (count_inst && (g0 % dev_.warp_size) == 0) {
          counters_.instructions += 1;
        }
        break;
      }
    }
  }
  // For sub-warp groups (half-warps) the instruction was counted on the
  // first group only; shared/register accesses fold into the arithmetic
  // instruction (no separate issue cost).
  return Status::ok();
}

Status BlockSim::exec_assign(const CNode& n,
                             const std::vector<uint8_t>& mask) {
  // Arithmetic issue cost + flop accounting per warp.
  int active_total = 0;
  for (int w = 0; w < nlanes_; w += dev_.warp_size) {
    int active = 0;
    const int we = std::min(w + dev_.warp_size, nlanes_);
    for (int l = w; l < we; ++l) active += mask[static_cast<size_t>(l)];
    if (active > 0) {
      counters_.instructions += n.arith_instructions;
      // Stores to shared/global cost an instruction; register stores
      // fold into the arithmetic.
      const CArray& lhs_arr = k_.arrays[static_cast<size_t>(n.lhs.array)];
      if (lhs_arr.space != ir::MemSpace::kRegister) {
        counters_.instructions += 1;
      }
    }
    active_total += active;
  }
  counters_.flops += static_cast<int64_t>(n.flops) * active_total;

  // Loads (rhs + read-modify-write of the lhs), then the store.
  for (const CRef& ref : n.loads) {
    OA_RETURN_IF_ERROR(process_ref(ref, /*is_store=*/false, mask,
                                   /*count_inst=*/true));
  }
  if (n.rmw_load) {
    OA_RETURN_IF_ERROR(process_ref(n.lhs, /*is_store=*/false, mask,
                                   /*count_inst=*/true));
  }
  OA_RETURN_IF_ERROR(process_ref(n.lhs, /*is_store=*/true, mask,
                                 /*count_inst=*/false));

  if (!functional_) return Status::ok();

  // Functional update.
  Status status = Status::ok();
  const CArray& arr = k_.arrays[static_cast<size_t>(n.lhs.array)];
  for (int lane = 0; lane < nlanes_; ++lane) {
    if (!mask[static_cast<size_t>(lane)]) continue;
    const float value = eval_val(*n.rhs, lane, status);
    const int64_t addr = addr_of(n.lhs, lane, status);
    OA_RETURN_IF_ERROR(status);
    float* cell = nullptr;
    switch (arr.space) {
      case ir::MemSpace::kGlobal:
        cell = &global_ptr_[static_cast<size_t>(n.lhs.array)][addr];
        break;
      case ir::MemSpace::kShared:
        cell = &shared_[static_cast<size_t>(n.lhs.array)]
                       [static_cast<size_t>(addr)];
        break;
      case ir::MemSpace::kRegister:
        cell = &registers_[static_cast<size_t>(n.lhs.array)]
                          [static_cast<size_t>(addr) * nlanes_ + lane];
        break;
    }
    switch (n.op) {
      case ir::AssignOp::kAssign: *cell = value; break;
      case ir::AssignOp::kAddAssign: *cell += value; break;
      case ir::AssignOp::kSubAssign: *cell -= value; break;
      case ir::AssignOp::kDivAssign: *cell /= value; break;
    }
  }
  return Status::ok();
}

Status BlockSim::exec(const std::vector<CNode>& body,
                      std::vector<uint8_t>& mask) {
  for (const CNode& n : body) {
    switch (n.kind) {
      case CNode::Kind::kLoop: {
        // Per-lane bounds; lockstep iteration with divergence masking.
        std::vector<int64_t> v(static_cast<size_t>(nlanes_), 0);
        std::vector<int64_t> hi(static_cast<size_t>(nlanes_), 0);
        bool any = false;
        for (int lane = 0; lane < nlanes_; ++lane) {
          if (!mask[static_cast<size_t>(lane)]) continue;
          const int64_t* s = lane_slots(lane);
          v[static_cast<size_t>(lane)] = n.lb.eval_max(s);
          hi[static_cast<size_t>(lane)] = n.ub.eval_min(s);
          any = true;
        }
        if (!any) break;
        std::vector<uint8_t> sub(static_cast<size_t>(nlanes_), 0);
        int64_t warp_iterations = 0;
        for (;;) {
          bool alive = false;
          for (int lane = 0; lane < nlanes_; ++lane) {
            const size_t l = static_cast<size_t>(lane);
            sub[l] = mask[l] && v[l] < hi[l];
            alive |= sub[l] != 0;
          }
          if (!alive) break;
          for (int w = 0; w < nlanes_; w += dev_.warp_size) {
            const int we = std::min(w + dev_.warp_size, nlanes_);
            for (int l = w; l < we; ++l) {
              if (sub[static_cast<size_t>(l)]) {
                ++warp_iterations;
                break;
              }
            }
          }
          for (int lane = 0; lane < nlanes_; ++lane) {
            if (sub[static_cast<size_t>(lane)]) {
              lane_slots(lane)[n.var_slot] = v[static_cast<size_t>(lane)];
            }
          }
          OA_RETURN_IF_ERROR(exec(n.body, sub));
          for (int lane = 0; lane < nlanes_; ++lane) {
            v[static_cast<size_t>(lane)] += n.step;
          }
        }
        // Loop maintenance (increment + branch), amortized by unroll.
        counters_.instructions +=
            (2 * warp_iterations + n.unroll - 1) / n.unroll;
        break;
      }
      case CNode::Kind::kAssign:
        OA_RETURN_IF_ERROR(exec_assign(n, mask));
        break;
      case CNode::Kind::kSync: {
        for (int lane = 0; lane < nlanes_; ++lane) {
          if (!mask[static_cast<size_t>(lane)]) {
            return internal_error(
                "__syncthreads() under divergent control flow");
          }
        }
        counters_.barriers += 1;
        counters_.instructions += (nlanes_ + dev_.warp_size - 1) /
                                  dev_.warp_size;
        break;
      }
      case CNode::Kind::kIf: {
        if (n.preds.empty()) {
          // Compile-time selected branch.
          OA_RETURN_IF_ERROR(exec(n.then_body, mask));
          break;
        }
        std::vector<uint8_t> t(static_cast<size_t>(nlanes_), 0);
        std::vector<uint8_t> e(static_cast<size_t>(nlanes_), 0);
        bool any_t = false, any_e = false;
        for (int lane = 0; lane < nlanes_; ++lane) {
          const size_t l = static_cast<size_t>(lane);
          if (!mask[l]) continue;
          bool pass = true;
          for (const CPred& p : n.preds) {
            if (!p.eval(lane_slots(lane))) {
              pass = false;
              break;
            }
          }
          t[l] = pass;
          e[l] = !pass;
          any_t |= pass;
          any_e |= !pass;
        }
        for (int w = 0; w < nlanes_; w += dev_.warp_size) {
          const int we = std::min(w + dev_.warp_size, nlanes_);
          for (int l = w; l < we; ++l) {
            if (mask[static_cast<size_t>(l)]) {
              counters_.instructions += 1;  // predicate evaluation
              break;
            }
          }
          (void)we;
        }
        if (any_t) OA_RETURN_IF_ERROR(exec(n.then_body, t));
        if (any_e) OA_RETURN_IF_ERROR(exec(n.else_body, e));
        break;
      }
    }
  }
  return Status::ok();
}

}  // namespace oa::gpusim
