#include "gpusim/block_sim.hpp"

#include <algorithm>
#include <numeric>

#include "support/strings.hpp"

namespace oa::gpusim {

namespace {

// Site id -> reference table (sites are assigned densely at compile
// time; every site belongs to exactly one CRef in the tree).
void build_site_table(const std::vector<CNode>& body,
                      std::vector<const CRef*>& site_ref) {
  for (const CNode& n : body) {
    switch (n.kind) {
      case CNode::Kind::kLoop:
        build_site_table(n.body, site_ref);
        break;
      case CNode::Kind::kAssign:
        for (const CRef& r : n.loads) {
          site_ref[static_cast<size_t>(r.site)] = &r;
        }
        site_ref[static_cast<size_t>(n.lhs.site)] = &n.lhs;
        break;
      case CNode::Kind::kSync:
        break;
      case CNode::Kind::kIf:
        build_site_table(n.then_body, site_ref);
        build_site_table(n.else_body, site_ref);
        break;
    }
  }
}

// Device-dependent leg of the collapse precondition: advancing every
// site in the loop body by its per-trip address delta must preserve the
// counter delta. That holds when the delta is a multiple of the
// "alignment quantum" of the memory space — transaction words for
// global (segment/line population is then translation-invariant), and
// anything for shared and registers: a uniform additive shift permutes
// the per-warp bank histogram without changing any conflict degree
// (lane address *differences* are what banking prices), and register
// reuse compares exact addresses, which shift in lockstep.
void compute_collapse_ok(const std::vector<CNode>& body,
                         const CompiledKernel& k, const DeviceModel& dev,
                         const std::vector<const CRef*>& site_ref,
                         std::vector<uint8_t>& out) {
  for (const CNode& n : body) {
    switch (n.kind) {
      case CNode::Kind::kLoop: {
        if (n.collapse_candidate) {
          bool ok = true;
          for (int site : n.body_sites) {
            const CRef* r = site_ref[static_cast<size_t>(site)];
            if (r == nullptr) {
              ok = false;
              break;
            }
            const CArray& arr = k.arrays[static_cast<size_t>(r->array)];
            const int64_t delta =
                r->addr_lin.uniform.coeff_of(n.var_slot) * n.step;
            if (delta == 0) continue;
            int64_t m = 1;
            switch (arr.space) {
              case ir::MemSpace::kGlobal:
                m = dev.transaction_bytes / elem_bytes(k.precision);
                break;
              case ir::MemSpace::kShared:
                m = 1;
                break;
              case ir::MemSpace::kRegister:
                m = 1;
                break;
            }
            if (delta % m != 0) {
              ok = false;
              break;
            }
          }
          if (ok) out[static_cast<size_t>(n.loop_id)] = 1;
        }
        compute_collapse_ok(n.body, k, dev, site_ref, out);
        break;
      }
      case CNode::Kind::kIf:
        compute_collapse_ok(n.then_body, k, dev, site_ref, out);
        compute_collapse_ok(n.else_body, k, dev, site_ref, out);
        break;
      default:
        break;
    }
  }
}

}  // namespace

BlockSim::BlockSim(const CompiledKernel& kernel, const DeviceModel& device,
                   bool functional, GlobalBuffers* buffers, bool fastpath)
    : k_(kernel),
      dev_(device),
      functional_(functional),
      buffers_(buffers),
      fastpath_(fastpath && !functional) {
  global_ptr_.resize(k_.arrays.size(), nullptr);
  shared_.resize(k_.arrays.size());
  registers_.resize(k_.arrays.size());
  if (fastpath_) {
    site_ref_.assign(static_cast<size_t>(k_.num_sites), nullptr);
    build_site_table(k_.body, site_ref_);
    collapse_ok_.assign(static_cast<size_t>(k_.num_loops), 0);
    compute_collapse_ok(k_.body, k_, dev_, site_ref_, collapse_ok_);
  }
}

Status BlockSim::run(int64_t by, int64_t bx, int lane_begin, int lane_end,
                     Counters& out) {
  nlanes_ = lane_end - lane_begin;
  lane_begin_ = lane_begin;
  const int64_t threads = k_.launch.threads_per_block();
  if (functional_ && (lane_begin != 0 || lane_end != threads)) {
    return internal_error("functional runs must simulate the whole block");
  }

  slots_.assign(static_cast<size_t>(nlanes_) * k_.num_slots, 0);
  reuse_addr_.assign(
      static_cast<size_t>(k_.num_sites) * static_cast<size_t>(nlanes_), -1);
  if (dev_.coalescing == CoalescingModel::kFermi) {
    line_addr_.assign(
        static_cast<size_t>(k_.num_sites) * static_cast<size_t>(nlanes_),
        -1);
  }
  scratch_addr_.assign(static_cast<size_t>(nlanes_), 0);
  counters_ = Counters{};

  // Bind array storage.
  for (size_t a = 0; a < k_.arrays.size(); ++a) {
    const CArray& arr = k_.arrays[a];
    switch (arr.space) {
      case ir::MemSpace::kGlobal:
        if (functional_) {
          std::vector<double>* buf =
              buffers_ != nullptr ? buffers_->find(arr.name) : nullptr;
          if (buf == nullptr ||
              buf->size() < static_cast<size_t>(arr.elements)) {
            return internal_error("global buffer '" + arr.name +
                                  "' missing or undersized");
          }
          global_ptr_[a] = buf->data();
        }
        break;
      case ir::MemSpace::kShared:
        if (functional_) {
          shared_[a].assign(static_cast<size_t>(arr.elements), 0.0);
        }
        break;
      case ir::MemSpace::kRegister:
        if (functional_) {
          registers_[a].assign(
              static_cast<size_t>(arr.elements) * nlanes_, 0.0);
        }
        break;
    }
  }

  // Bind block / thread index slots per lane.
  for (int lane = 0; lane < nlanes_; ++lane) {
    int64_t* s = lane_slots(lane);
    const int64_t abs_lane = lane_begin_ + lane;
    const int64_t tx = abs_lane % k_.launch.block_x;
    const int64_t ty = abs_lane / k_.launch.block_x;
    if (k_.block_y_slot >= 0) s[k_.block_y_slot] = by;
    if (k_.block_x_slot >= 0) s[k_.block_x_slot] = bx;
    if (k_.thread_y_slot >= 0) s[k_.thread_y_slot] = ty;
    if (k_.thread_x_slot >= 0) s[k_.thread_x_slot] = tx;
  }

  if (fastpath_) {
    // Lane-range geometry: the simulated lanes are a contiguous
    // absolute-lane interval, which makes min/max of any lane-affine
    // value attained at a handful of corner (tx, ty) points and makes
    // the (base, row step, wrap step) triple characterize per-lane
    // address vectors exactly.
    bx_ = k_.launch.block_x;
    const int64_t a0 = lane_begin_;
    const int64_t al = a0 + nlanes_ - 1;
    tx0_ = a0 % bx_;
    ty0_ = a0 / bx_;
    tx_last_ = al % bx_;
    ty_last_ = al / bx_;
    has_wrap_ = ty_last_ > ty0_;
    has_row_step_ = (nlanes_ - 1) > (ty_last_ - ty0_);
    warps_ = (nlanes_ + dev_.warp_size - 1) / dev_.warp_size;

    uslots_.assign(static_cast<size_t>(k_.num_slots), 0);
    if (k_.block_y_slot >= 0) uslots_[k_.block_y_slot] = by;
    if (k_.block_x_slot >= 0) uslots_[k_.block_x_slot] = bx;
    full_mask_.assign(static_cast<size_t>(nlanes_), 1);
    site_base_.assign(static_cast<size_t>(k_.num_sites), 0);
    site_rowc_.assign(static_cast<size_t>(k_.num_sites), 0);
    site_wrapc_.assign(static_cast<size_t>(k_.num_sites), 0);
    site_valid_.assign(static_cast<size_t>(k_.num_sites), 0);
    site_interp_.assign(static_cast<size_t>(k_.num_sites), 0);
    site_gen_.assign(static_cast<size_t>(k_.num_sites), 0);
    exec_gen_ = 1;
    fast_var_stack_.clear();
    fallback_count_ = 0;
    masked_count_ = 0;
    lanes_synced_ = true;
    OA_RETURN_IF_ERROR(exec_fast(k_.body));
  } else {
    std::vector<uint8_t> mask(static_cast<size_t>(nlanes_), 1);
    OA_RETURN_IF_ERROR(exec(k_.body, mask));
  }
  out += counters_;
  return Status::ok();
}

int64_t BlockSim::addr_of(const CRef& ref, int lane, Status& status) const {
  const int64_t* s = lane_slots(lane);
  const int64_t r = ref.row.eval(s);
  const int64_t c = ref.col.eval(s);
  const CArray& arr = k_.arrays[static_cast<size_t>(ref.array)];
  if (r < 0 || r >= arr.rows || c < 0 || c >= arr.cols) {
    if (status.is_ok()) {
      status = internal_error(str_format(
          "out-of-bounds access to %s: (%lld, %lld) not in %lldx%lld",
          arr.name.c_str(), static_cast<long long>(r),
          static_cast<long long>(c), static_cast<long long>(arr.rows),
          static_cast<long long>(arr.cols)));
    }
    return 0;
  }
  return r + c * arr.ld;
}

double BlockSim::load_value(const CRef& ref, int lane, int64_t addr) const {
  const CArray& arr = k_.arrays[static_cast<size_t>(ref.array)];
  switch (arr.space) {
    case ir::MemSpace::kGlobal:
      return global_ptr_[static_cast<size_t>(ref.array)][addr];
    case ir::MemSpace::kShared:
      return shared_[static_cast<size_t>(ref.array)]
                    [static_cast<size_t>(addr)];
    case ir::MemSpace::kRegister:
      return registers_[static_cast<size_t>(ref.array)]
                       [static_cast<size_t>(addr) * nlanes_ + lane];
  }
  return 0.0;
}

double BlockSim::eval_tape(const CNode& n, int lane, Status& status) {
  // Postfix walk with an explicit value stack; the tape preserves the
  // source operation order exactly. Every arithmetic op rounds to the
  // kernel's precision: for f32 that reproduces native float arithmetic
  // bit-for-bit (innocuous double rounding — see support/precision.hpp),
  // since loads and constants are themselves float-valued.
  const Precision p = k_.precision;
  double stack[kMaxTapeDepth];
  int sp = 0;
  for (const COp& op : n.tape) {
    switch (op.kind) {
      case COp::Kind::kConst:
        stack[sp++] = op.constant;
        break;
      case COp::Kind::kLoad: {
        const CRef& ref = n.loads[static_cast<size_t>(op.load)];
        const int64_t addr = addr_of(ref, lane, status);
        stack[sp++] = status.is_ok() ? load_value(ref, lane, addr) : 0.0;
        break;
      }
      case COp::Kind::kNeg:
        stack[sp - 1] = -stack[sp - 1];
        break;
      case COp::Kind::kAdd:
        stack[sp - 2] = round_to(p, stack[sp - 2] + stack[sp - 1]);
        --sp;
        break;
      case COp::Kind::kSub:
        stack[sp - 2] = round_to(p, stack[sp - 2] - stack[sp - 1]);
        --sp;
        break;
      case COp::Kind::kMul:
        stack[sp - 2] = round_to(p, stack[sp - 2] * stack[sp - 1]);
        --sp;
        break;
      case COp::Kind::kDiv:
        stack[sp - 2] = round_to(p, stack[sp - 2] / stack[sp - 1]);
        --sp;
        break;
    }
  }
  return sp > 0 ? stack[0] : 0.0;
}

int64_t BlockSim::distinct_chunks(const std::vector<uint8_t>& mask, int g0,
                                  int g1, int chunk_bytes, int site) const {
  // Distinct chunk_bytes-sized chunks touched by the active lanes of one
  // group (group size <= 32: linear scan over a stack array). When
  // `site` >= 0, a lane whose chunk equals its previous chunk at this
  // reference site is served by the cache (Fermi L1 line reuse) and
  // contributes nothing.
  int64_t chunks[32];
  int n = 0;
  const int64_t eb = elem_bytes(k_.precision);
  for (int l = g0; l < g1; ++l) {
    if (!mask[static_cast<size_t>(l)]) continue;
    const int64_t chunk =
        scratch_addr_[static_cast<size_t>(l)] * eb / chunk_bytes;
    if (site >= 0) {
      int64_t& last =
          line_addr_[static_cast<size_t>(site) * nlanes_ + l];
      if (last == chunk) continue;  // line still cached for this lane
      last = chunk;
    }
    bool seen = false;
    for (int i = 0; i < n; ++i) {
      if (chunks[i] == chunk) {
        seen = true;
        break;
      }
    }
    if (!seen) chunks[n++] = chunk;
  }
  return n;
}

void BlockSim::count_group(const CArray& arr, const CRef& ref, bool is_store,
                           const std::vector<uint8_t>& mask, int g0, int g1,
                           int active, bool count_inst) {
  switch (arr.space) {
    case ir::MemSpace::kRegister: {
      if (arr.spilled) {
        // Spilled register block: local-memory traffic.
        (is_store ? counters_.local_store : counters_.local_read) += 1;
        counters_.global_bytes += dev_.transaction_bytes;
      }
      break;
    }
    case ir::MemSpace::kShared: {
      // Bank-conflict analysis over the group; identical addresses
      // broadcast.
      (is_store ? counters_.shared_store : counters_.shared_load) += 1;
      int64_t bank_addr[32];
      int bank_count[32];
      for (int i = 0; i < dev_.shared_banks; ++i) {
        bank_addr[i] = -1;
        bank_count[i] = 0;
      }
      int degree = 1;
      // Banks are 4-byte wide: an element address maps to bank
      // (addr * words) % banks, so f64 (2 words) occupies every other
      // bank and stride-1 access pays a 2-way replay — the classic
      // double-precision shared-memory penalty.
      const int64_t ew = elem_words(k_.precision);
      for (int l = g0; l < g1; ++l) {
        if (!mask[static_cast<size_t>(l)]) continue;
        const int64_t addr = scratch_addr_[static_cast<size_t>(l)];
        const int b = static_cast<int>((addr * ew) % dev_.shared_banks);
        if (bank_count[b] == 0 || bank_addr[b] != addr) {
          // Distinct address on the same bank: serialized replay.
          bank_count[b] += 1;
          bank_addr[b] = addr;
        }
        degree = std::max(degree, bank_count[b]);
      }
      counters_.shared_bank_conflict_replays += degree - 1;
      break;
    }
    case ir::MemSpace::kGlobal: {
      switch (dev_.coalescing) {
        case CoalescingModel::kStrict: {
          // CC 1.0: lanes must access base + lane_offset in order,
          // transaction-aligned, all lanes of the half-warp
          // participating. A perfect pattern still needs
          // ceil(group_bytes / transaction_bytes) transactions — 1 for
          // a 16-lane f32 half-warp, 2 for f64.
          const int64_t eb = elem_bytes(k_.precision);
          bool perfect = active == g1 - g0;
          int64_t base = scratch_addr_[static_cast<size_t>(g0)];
          if (perfect && base % (dev_.transaction_bytes / eb) != 0) {
            perfect = false;
          }
          for (int l = g0; perfect && l < g1; ++l) {
            if (scratch_addr_[static_cast<size_t>(l)] != base + (l - g0)) {
              perfect = false;
            }
          }
          if (perfect) {
            const int64_t txns =
                ((g1 - g0) * eb + dev_.transaction_bytes - 1) /
                dev_.transaction_bytes;
            (is_store ? counters_.gst_coherent : counters_.gld_coherent) +=
                txns;
            counters_.global_bytes += txns * dev_.transaction_bytes;
          } else {
            // Serialized: one transaction per participating thread.
            (is_store ? counters_.gst_incoherent
                      : counters_.gld_incoherent) += active;
            counters_.global_bytes += active * dev_.transaction_bytes;
          }
          break;
        }
        case CoalescingModel::kSegmented: {
          // CC 1.2/1.3: minimal set of 64B segments, but the hardware
          // shrinks half-used segments to 32B transfers — traffic is
          // counted at 32B granularity.
          const int64_t segs =
              distinct_chunks(mask, g0, g1, dev_.transaction_bytes, -1);
          (is_store ? counters_.gst_coherent : counters_.gld_coherent) +=
              segs;
          counters_.global_bytes +=
              32 * distinct_chunks(mask, g0, g1, 32, -1);
          break;
        }
        case CoalescingModel::kFermi: {
          (is_store ? counters_.gst_request : counters_.gld_request) += 1;
          // L1-cached 128B lines: a lane re-touching its previous line
          // (streaming along a column) hits in cache.
          const int64_t lines = distinct_chunks(
              mask, g0, g1, dev_.transaction_bytes,
              is_store ? -1 : ref.site);
          counters_.global_bytes += lines * dev_.transaction_bytes;
          break;
        }
      }
      // Memory instruction issue cost: one per warp per access.
      if (count_inst && (g0 % dev_.warp_size) == 0) {
        counters_.instructions += 1;
      }
      break;
    }
  }
}

Status BlockSim::process_ref(const CRef& ref, bool is_store,
                             const std::vector<uint8_t>& mask,
                             bool count_inst) {
  const CArray& arr = k_.arrays[static_cast<size_t>(ref.array)];
  Status status = Status::ok();

  if (fastpath_ && !is_store) adopt_site_interp(ref);

  // Collect addresses; apply the register-caching model for loads
  // (a lane whose address at this site is unchanged since the previous
  // execution costs nothing, like a value kept in a register by the
  // backend compiler).
  bool all_reused = !is_store;
  for (int lane = 0; lane < nlanes_; ++lane) {
    if (!mask[static_cast<size_t>(lane)]) continue;
    const int64_t addr = addr_of(ref, lane, status);
    scratch_addr_[static_cast<size_t>(lane)] = addr;
    if (!is_store) {
      int64_t& last =
          reuse_addr_[static_cast<size_t>(ref.site) * nlanes_ + lane];
      if (last != addr) {
        all_reused = false;
        last = addr;
      }
    }
  }
  OA_RETURN_IF_ERROR(status);
  if (all_reused) return Status::ok();  // register-cached

  const int group = arr.space == ir::MemSpace::kShared
                        ? dev_.shared_banks
                        : (dev_.coalescing == CoalescingModel::kFermi
                               ? dev_.warp_size
                               : dev_.warp_size / 2);

  for (int g0 = 0; g0 < nlanes_; g0 += group) {
    const int g1 = std::min(g0 + group, nlanes_);
    int active = 0;
    for (int l = g0; l < g1; ++l) active += mask[static_cast<size_t>(l)];
    if (active == 0) continue;
    count_group(arr, ref, is_store, mask, g0, g1, active, count_inst);
  }
  // For sub-warp groups (half-warps) the instruction was counted on the
  // first group only; shared/register accesses fold into the arithmetic
  // instruction (no separate issue cost).
  return Status::ok();
}

Status BlockSim::exec_assign(const CNode& n,
                             const std::vector<uint8_t>& mask) {
  // Arithmetic issue cost + flop accounting per warp.
  int active_total = 0;
  for (int w = 0; w < nlanes_; w += dev_.warp_size) {
    int active = 0;
    const int we = std::min(w + dev_.warp_size, nlanes_);
    for (int l = w; l < we; ++l) active += mask[static_cast<size_t>(l)];
    if (active > 0) {
      counters_.instructions += n.arith_instructions;
      // Stores to shared/global cost an instruction; register stores
      // fold into the arithmetic.
      const CArray& lhs_arr = k_.arrays[static_cast<size_t>(n.lhs.array)];
      if (lhs_arr.space != ir::MemSpace::kRegister) {
        counters_.instructions += 1;
      }
    }
    active_total += active;
  }
  counters_.flops += static_cast<int64_t>(n.flops) * active_total;

  // Loads (rhs + read-modify-write of the lhs), then the store.
  for (const CRef& ref : n.loads) {
    OA_RETURN_IF_ERROR(process_ref(ref, /*is_store=*/false, mask,
                                   /*count_inst=*/true));
  }
  if (n.rmw_load) {
    OA_RETURN_IF_ERROR(process_ref(n.lhs, /*is_store=*/false, mask,
                                   /*count_inst=*/true));
  }
  OA_RETURN_IF_ERROR(process_ref(n.lhs, /*is_store=*/true, mask,
                                 /*count_inst=*/false));

  if (!functional_) return Status::ok();

  // Functional update. The read-modify-write rounds to the kernel's
  // precision like every other arithmetic op.
  Status status = Status::ok();
  const CArray& arr = k_.arrays[static_cast<size_t>(n.lhs.array)];
  const Precision p = k_.precision;
  for (int lane = 0; lane < nlanes_; ++lane) {
    if (!mask[static_cast<size_t>(lane)]) continue;
    const double value = eval_tape(n, lane, status);
    const int64_t addr = addr_of(n.lhs, lane, status);
    OA_RETURN_IF_ERROR(status);
    double* cell = nullptr;
    switch (arr.space) {
      case ir::MemSpace::kGlobal:
        cell = &global_ptr_[static_cast<size_t>(n.lhs.array)][addr];
        break;
      case ir::MemSpace::kShared:
        cell = &shared_[static_cast<size_t>(n.lhs.array)]
                       [static_cast<size_t>(addr)];
        break;
      case ir::MemSpace::kRegister:
        cell = &registers_[static_cast<size_t>(n.lhs.array)]
                          [static_cast<size_t>(addr) * nlanes_ + lane];
        break;
    }
    switch (n.op) {
      case ir::AssignOp::kAssign: *cell = value; break;
      case ir::AssignOp::kAddAssign:
        *cell = round_to(p, *cell + value);
        break;
      case ir::AssignOp::kSubAssign:
        *cell = round_to(p, *cell - value);
        break;
      case ir::AssignOp::kDivAssign:
        *cell = round_to(p, *cell / value);
        break;
    }
  }
  return Status::ok();
}

Status BlockSim::exec(const std::vector<CNode>& body,
                      std::vector<uint8_t>& mask) {
  for (const CNode& n : body) {
    OA_RETURN_IF_ERROR(exec_node(n, mask));
  }
  return Status::ok();
}

Status BlockSim::exec_node(const CNode& n, std::vector<uint8_t>& mask) {
  switch (n.kind) {
    case CNode::Kind::kLoop: {
      // Per-lane bounds; lockstep iteration with divergence masking.
      std::vector<int64_t> v(static_cast<size_t>(nlanes_), 0);
      std::vector<int64_t> hi(static_cast<size_t>(nlanes_), 0);
      bool any = false;
      for (int lane = 0; lane < nlanes_; ++lane) {
        if (!mask[static_cast<size_t>(lane)]) continue;
        const int64_t* s = lane_slots(lane);
        v[static_cast<size_t>(lane)] = n.lb.eval_max(s);
        hi[static_cast<size_t>(lane)] = n.ub.eval_min(s);
        any = true;
      }
      if (!any) break;
      std::vector<uint8_t> sub(static_cast<size_t>(nlanes_), 0);
      int64_t warp_iterations = 0;
      for (;;) {
        bool alive = false;
        for (int lane = 0; lane < nlanes_; ++lane) {
          const size_t l = static_cast<size_t>(lane);
          sub[l] = mask[l] && v[l] < hi[l];
          alive |= sub[l] != 0;
        }
        if (!alive) break;
        for (int w = 0; w < nlanes_; w += dev_.warp_size) {
          const int we = std::min(w + dev_.warp_size, nlanes_);
          for (int l = w; l < we; ++l) {
            if (sub[static_cast<size_t>(l)]) {
              ++warp_iterations;
              break;
            }
          }
        }
        for (int lane = 0; lane < nlanes_; ++lane) {
          if (sub[static_cast<size_t>(lane)]) {
            lane_slots(lane)[n.var_slot] = v[static_cast<size_t>(lane)];
          }
        }
        OA_RETURN_IF_ERROR(exec(n.body, sub));
        for (int lane = 0; lane < nlanes_; ++lane) {
          v[static_cast<size_t>(lane)] += n.step;
        }
      }
      // Loop maintenance (increment + branch), amortized by unroll.
      counters_.instructions +=
          (2 * warp_iterations + n.unroll - 1) / n.unroll;
      break;
    }
    case CNode::Kind::kAssign:
      ++fstats_.interp_statements;
      OA_RETURN_IF_ERROR(exec_assign(n, mask));
      break;
    case CNode::Kind::kSync: {
      ++fstats_.interp_statements;
      for (int lane = 0; lane < nlanes_; ++lane) {
        if (!mask[static_cast<size_t>(lane)]) {
          return internal_error(
              "__syncthreads() under divergent control flow");
        }
      }
      counters_.barriers += 1;
      counters_.instructions += (nlanes_ + dev_.warp_size - 1) /
                                dev_.warp_size;
      break;
    }
    case CNode::Kind::kIf: {
      if (n.preds.empty()) {
        // Compile-time selected branch.
        OA_RETURN_IF_ERROR(exec(n.then_body, mask));
        break;
      }
      ++fstats_.interp_statements;
      std::vector<uint8_t> t(static_cast<size_t>(nlanes_), 0);
      std::vector<uint8_t> e(static_cast<size_t>(nlanes_), 0);
      bool any_t = false, any_e = false;
      for (int lane = 0; lane < nlanes_; ++lane) {
        const size_t l = static_cast<size_t>(lane);
        if (!mask[l]) continue;
        bool pass = true;
        for (const CPred& p : n.preds) {
          if (!p.eval(lane_slots(lane))) {
            pass = false;
            break;
          }
        }
        t[l] = pass;
        e[l] = !pass;
        any_t |= pass;
        any_e |= !pass;
      }
      for (int w = 0; w < nlanes_; w += dev_.warp_size) {
        const int we = std::min(w + dev_.warp_size, nlanes_);
        for (int l = w; l < we; ++l) {
          if (mask[static_cast<size_t>(l)]) {
            counters_.instructions += 1;  // predicate evaluation
            break;
          }
        }
        (void)we;
      }
      if (any_t) OA_RETURN_IF_ERROR(exec(n.then_body, t));
      if (any_e) OA_RETURN_IF_ERROR(exec(n.else_body, e));
      break;
    }
  }
  return Status::ok();
}

// ---- warp-analytic fast path --------------------------------------

namespace {

/// Distinct w-sized chunks touched by the affine address sequence
/// base + stride*i, i in [0, n). Addresses are in-bounds (>= 0) here,
/// so integer division is floor.
int64_t distinct_affine(int64_t base, int64_t stride, int64_t n,
                        int64_t w) {
  if (n <= 1 || stride == 0) return 1;
  const int64_t s = stride < 0 ? -stride : stride;
  if (s >= w) return n;  // every step lands in a new chunk
  const int64_t last = base + stride * (n - 1);
  const int64_t lo = std::min(base, last);
  const int64_t hi = std::max(base, last);
  // |stride| < w: consecutive floors differ by 0 or 1, so every chunk
  // between the extremes is touched.
  return hi / w - lo / w + 1;
}

}  // namespace

Status BlockSim::exec_fast(const std::vector<CNode>& body) {
  for (const CNode& n : body) {
    switch (n.kind) {
      case CNode::Kind::kLoop:
        if (n.bounds_uniform) {
          OA_RETURN_IF_ERROR(exec_fast_loop(n));
        } else {
          OA_RETURN_IF_ERROR(fallback_node(n));
        }
        break;
      case CNode::Kind::kAssign:
        if (n.fast) {
          OA_RETURN_IF_ERROR(exec_fast_assign(n));
        } else {
          OA_RETURN_IF_ERROR(fallback_node(n));
        }
        break;
      case CNode::Kind::kSync:
        // Full mask by construction: divergence never reaches here.
        ++fstats_.fast_statements;
        counters_.barriers += 1;
        counters_.instructions += warps_;
        break;
      case CNode::Kind::kIf:
        if (n.preds.empty()) {
          // Compile-time selected branch: free, like the interpreter.
          OA_RETURN_IF_ERROR(exec_fast(n.then_body));
        } else if (n.preds_uniform) {
          ++fstats_.fast_statements;
          counters_.instructions += warps_;  // predicate evaluation
          bool pass = true;
          for (const CPred& p : n.preds) {
            if (!p.eval(uslots_.data())) {
              pass = false;
              break;
            }
          }
          OA_RETURN_IF_ERROR(exec_fast(pass ? n.then_body : n.else_body));
        } else {
          OA_RETURN_IF_ERROR(fallback_node(n));
        }
        break;
    }
  }
  return Status::ok();
}

Status BlockSim::fallback_node(const CNode& n) {
  ++fallback_count_;
  sync_fast_vars();
  return exec_node(n, full_mask_);
}

void BlockSim::sync_fast_vars() {
  if (lanes_synced_) return;
  for (const FastVar& fv : fast_var_stack_) {
    const int64_t u = uslots_[static_cast<size_t>(fv.slot)];
    if (fv.tx == 0 && fv.ty == 0) {
      for (int lane = 0; lane < nlanes_; ++lane) {
        lane_slots(lane)[fv.slot] = u;
      }
    } else {
      // Lane-affine loop variable: reconstruct the per-lane value from
      // the uniform component and the bound's thread coefficients.
      int64_t tx = lane_begin_ % bx_;
      int64_t ty = lane_begin_ / bx_;
      for (int lane = 0; lane < nlanes_; ++lane) {
        lane_slots(lane)[fv.slot] = u + fv.tx * tx + fv.ty * ty;
        if (++tx == bx_) {
          tx = 0;
          ++ty;
        }
      }
    }
  }
  lanes_synced_ = true;
}

void BlockSim::affine_range(int64_t uniform, int64_t c_tx, int64_t c_ty,
                            int64_t& mn, int64_t& mx) const {
  affine_range_lanes(uniform, c_tx, c_ty, 0, nlanes_ - 1, mn, mx);
}

void BlockSim::affine_range_lanes(int64_t uniform, int64_t c_tx,
                                  int64_t c_ty, int l0, int l1,
                                  int64_t& mn, int64_t& mx) const {
  // The lane set is a contiguous absolute-lane interval: full interior
  // rows plus partial first/last rows. An affine function's extremes
  // over that set are attained at row endpoints, and the row-endpoint
  // values are affine in ty, so a handful of corners suffices.
  const int64_t a0 = lane_begin_ + l0;
  const int64_t al = lane_begin_ + l1;
  const int64_t tx0 = a0 % bx_, ty0 = a0 / bx_;
  const int64_t txl = al % bx_, tyl = al / bx_;
  mn = INT64_MAX;
  mx = INT64_MIN;
  const auto add = [&](int64_t tx, int64_t ty) {
    const int64_t v = uniform + c_tx * tx + c_ty * ty;
    mn = std::min(mn, v);
    mx = std::max(mx, v);
  };
  if (tyl == ty0) {
    add(tx0, ty0);
    add(txl, ty0);
  } else {
    add(tx0, ty0);
    add(bx_ - 1, ty0);
    add(0, tyl);
    add(txl, tyl);
    if (tyl - ty0 >= 2) {
      add(0, ty0 + 1);
      add(bx_ - 1, ty0 + 1);
      add(0, tyl - 1);
      add(bx_ - 1, tyl - 1);
    }
  }
}

bool BlockSim::group_stride(int g0, int n, int64_t uniform, int64_t c_tx,
                            int64_t c_ty, int64_t& base,
                            int64_t& stride) const {
  const int64_t a0 = lane_begin_ + g0;
  const int64_t tx = a0 % bx_;
  const int64_t ty = a0 / bx_;
  base = uniform + c_tx * tx + c_ty * ty;
  if (n == 1) {
    stride = 0;
    return true;
  }
  if ((a0 + n - 1) / bx_ == ty) {  // group within one row
    stride = c_tx;
    return true;
  }
  if (bx_ == 1) {  // every step is a row wrap
    stride = c_ty;
    return true;
  }
  if (c_ty == c_tx * bx_) {  // wrap step equals row step
    stride = c_tx;
    return true;
  }
  return false;
}

void BlockSim::materialize_group(const CRef& ref, int64_t uniform, int g0,
                                 int g1) {
  const int64_t atx = ref.addr_lin.tx_coeff;
  const int64_t aty = ref.addr_lin.ty_coeff;
  int64_t tx = (lane_begin_ + g0) % bx_;
  int64_t ty = (lane_begin_ + g0) / bx_;
  for (int l = g0; l < g1; ++l) {
    scratch_addr_[static_cast<size_t>(l)] = uniform + atx * tx + aty * ty;
    if (++tx == bx_) {
      tx = 0;
      ++ty;
    }
  }
}

Status BlockSim::exec_fast_assign(const CNode& n) {
  ++fstats_.fast_statements;
  const CArray& lhs_arr = k_.arrays[static_cast<size_t>(n.lhs.array)];
  counters_.instructions +=
      static_cast<int64_t>(warps_) *
      (n.arith_instructions +
       (lhs_arr.space != ir::MemSpace::kRegister ? 1 : 0));
  counters_.flops += static_cast<int64_t>(n.flops) * nlanes_;

  for (const CRef& ref : n.loads) {
    OA_RETURN_IF_ERROR(process_ref_fast(ref, /*is_store=*/false,
                                        /*count_inst=*/true));
  }
  if (n.rmw_load) {
    OA_RETURN_IF_ERROR(process_ref_fast(n.lhs, /*is_store=*/false,
                                        /*count_inst=*/true));
  }
  return process_ref_fast(n.lhs, /*is_store=*/true, /*count_inst=*/false);
}

Status BlockSim::process_ref_fast(const CRef& ref, bool is_store,
                                  bool count_inst) {
  const CArray& arr = k_.arrays[static_cast<size_t>(ref.array)];

  // Exact per-lane bounds check via the affine extremes. On violation,
  // delegate the whole reference to the interpreter so the error text
  // and partial side effects match it bit for bit.
  {
    int64_t mn, mx;
    const int64_t ur = ref.row_lin.uniform.eval(uslots_.data());
    affine_range(ur, ref.row_lin.tx_coeff, ref.row_lin.ty_coeff, mn, mx);
    bool oob = mn < 0 || mx >= arr.rows;
    if (!oob) {
      const int64_t uc = ref.col_lin.uniform.eval(uslots_.data());
      affine_range(uc, ref.col_lin.tx_coeff, ref.col_lin.ty_coeff, mn, mx);
      oob = mn < 0 || mx >= arr.cols;
    }
    if (oob) {
      ++fallback_count_;
      sync_fast_vars();
      return process_ref(ref, is_store, full_mask_, count_inst);
    }
  }

  const int64_t ua = ref.addr_lin.uniform.eval(uslots_.data());
  const int64_t atx = ref.addr_lin.tx_coeff;
  const int64_t aty = ref.addr_lin.ty_coeff;

  if (!is_store) {
    // Register-caching gate on the canonical triple (base, row step,
    // wrap step), which characterizes the per-lane address vector
    // exactly for this lane range — O(1) stand-in for comparing all
    // lanes against reuse_addr_.
    const int64_t base0 = ua + atx * tx0_ + aty * ty0_;
    const int64_t rowc = has_row_step_ ? atx : 0;
    const int64_t wrapc = has_wrap_ ? aty - atx * (bx_ - 1) : 0;
    const size_t s = static_cast<size_t>(ref.site);
    site_gen_[s] = exec_gen_;
    bool reused;
    if (site_interp_[s]) {
      // An interpreter or masked round priced this site last, so the
      // per-lane reuse row holds the live state: run the interpreter's
      // own compare over the materialized affine addresses once, then
      // hand the site back to the triple summary.
      materialize_group(ref, ua, 0, nlanes_);
      int64_t* row =
          reuse_addr_.data() + s * static_cast<size_t>(nlanes_);
      reused = true;
      for (int l = 0; l < nlanes_; ++l) {
        const int64_t addr = scratch_addr_[static_cast<size_t>(l)];
        if (row[l] != addr) {
          reused = false;
          row[l] = addr;
        }
      }
      site_interp_[s] = 0;
    } else {
      reused = site_valid_[s] && site_base_[s] == base0 &&
               site_rowc_[s] == rowc && site_wrapc_[s] == wrapc;
    }
    site_base_[s] = base0;
    site_rowc_[s] = rowc;
    site_wrapc_[s] = wrapc;
    site_valid_[s] = 1;
    if (reused) return Status::ok();  // register-cached
  }

  switch (arr.space) {
    case ir::MemSpace::kRegister: {
      if (arr.spilled) {
        const int group = dev_.coalescing == CoalescingModel::kFermi
                              ? dev_.warp_size
                              : dev_.warp_size / 2;
        const int64_t groups = (nlanes_ + group - 1) / group;
        (is_store ? counters_.local_store : counters_.local_read) +=
            groups;
        counters_.global_bytes += groups * dev_.transaction_bytes;
      }
      break;
    }
    case ir::MemSpace::kShared: {
      const int group = dev_.shared_banks;
      for (int g0 = 0; g0 < nlanes_; g0 += group) {
        const int g1 = std::min(g0 + group, nlanes_);
        int64_t base, s;
        if (group_stride(g0, g1 - g0, ua, atx, aty, base, s)) {
          (is_store ? counters_.shared_store : counters_.shared_load) += 1;
          if (s != 0) {
            // All addresses distinct; in bank (= 4-byte word) units the
            // stride is s * elem_words, and lanes i, j collide iff
            // i ≡ j (mod banks / gcd(|s*words|, banks)).
            const int64_t banks = dev_.shared_banks;
            const int64_t sw = (s < 0 ? -s : s) * elem_words(k_.precision);
            const int64_t period = banks / std::gcd(sw, banks);
            const int64_t degree = ((g1 - g0) + period - 1) / period;
            counters_.shared_bank_conflict_replays += degree - 1;
          }
        } else {
          materialize_group(ref, ua, g0, g1);
          count_group(arr, ref, is_store, full_mask_, g0, g1, g1 - g0,
                      count_inst);
        }
      }
      break;
    }
    case ir::MemSpace::kGlobal: {
      if (dev_.coalescing == CoalescingModel::kFermi && !is_store) {
        // Fermi loads keep per-(site, lane) L1 line state: materialize
        // the affine addresses (a cheap incremental walk) and run the
        // exact per-group scan so the line cache stays bit-identical.
        materialize_group(ref, ua, 0, nlanes_);
        for (int g0 = 0; g0 < nlanes_; g0 += dev_.warp_size) {
          const int g1 = std::min(g0 + dev_.warp_size, nlanes_);
          count_group(arr, ref, is_store, full_mask_, g0, g1, g1 - g0,
                      count_inst);
        }
        break;
      }
      const int group = dev_.coalescing == CoalescingModel::kFermi
                            ? dev_.warp_size
                            : dev_.warp_size / 2;
      for (int g0 = 0; g0 < nlanes_; g0 += group) {
        const int g1 = std::min(g0 + group, nlanes_);
        const int ng = g1 - g0;
        int64_t base, s;
        if (!group_stride(g0, ng, ua, atx, aty, base, s)) {
          materialize_group(ref, ua, g0, g1);
          count_group(arr, ref, is_store, full_mask_, g0, g1, ng,
                      count_inst);
          continue;
        }
        const int64_t eb = elem_bytes(k_.precision);
        switch (dev_.coalescing) {
          case CoalescingModel::kStrict: {
            // addr(l) = base + (l - g0) for all lanes ⟺ stride == 1
            // (or a single lane); all lanes are active here. Perfect
            // patterns pay ceil(group_bytes / transaction_bytes)
            // transactions, exactly like the interpreter.
            const bool perfect =
                base % (dev_.transaction_bytes / eb) == 0 &&
                (ng == 1 || s == 1);
            if (perfect) {
              const int64_t txns =
                  (ng * eb + dev_.transaction_bytes - 1) /
                  dev_.transaction_bytes;
              (is_store ? counters_.gst_coherent
                        : counters_.gld_coherent) += txns;
              counters_.global_bytes += txns * dev_.transaction_bytes;
            } else {
              (is_store ? counters_.gst_incoherent
                        : counters_.gld_incoherent) += ng;
              counters_.global_bytes += ng * dev_.transaction_bytes;
            }
            break;
          }
          case CoalescingModel::kSegmented: {
            const int64_t segs = distinct_affine(
                base, s, ng, dev_.transaction_bytes / eb);
            (is_store ? counters_.gst_coherent
                      : counters_.gld_coherent) += segs;
            counters_.global_bytes +=
                32 * distinct_affine(base, s, ng, 32 / eb);
            break;
          }
          case CoalescingModel::kFermi: {  // stores only (no line cache)
            (is_store ? counters_.gst_request : counters_.gld_request) +=
                1;
            counters_.global_bytes +=
                dev_.transaction_bytes *
                distinct_affine(base, s, ng, dev_.transaction_bytes / eb);
            break;
          }
        }
        if (count_inst && (g0 % dev_.warp_size) == 0) {
          counters_.instructions += 1;
        }
      }
      break;
    }
  }
  return Status::ok();
}

bool BlockSim::binding_terms(const CNode& n, size_t& bi, size_t& bj) const {
  // Uniform components of every bound term; per-lane term value is
  // u + tc.first*tx + tc.second*ty (bounds_uniform guarantees every
  // slot in every term is lane-affine). A term "binds" when it attains
  // the max (lb) / min (ub) for every lane; interval-test the pairwise
  // differences over the lane range.
  int64_t u_lb[8], u_ub[8];
  const size_t nl = n.lb.terms.size(), nu = n.ub.terms.size();
  if (nl > 8 || nu > 8) return false;
  for (size_t i = 0; i < nl; ++i) {
    u_lb[i] = n.lb.terms[i].eval(uslots_.data());
  }
  for (size_t j = 0; j < nu; ++j) {
    u_ub[j] = n.ub.terms[j].eval(uslots_.data());
  }
  const auto dominates = [&](size_t i, size_t m, const int64_t* u,
                             const auto& tc, bool want_max) {
    int64_t mn, mx;
    affine_range(u[i] - u[m], tc[i].first - tc[m].first,
                 tc[i].second - tc[m].second, mn, mx);
    return want_max ? mn >= 0 : mx <= 0;
  };
  bi = nl;
  bj = nu;
  for (size_t i = 0; i < nl && bi == nl; ++i) {
    bool all = true;
    for (size_t m = 0; m < nl && all; ++m) {
      all = m == i || dominates(i, m, u_lb, n.lb_tc, /*want_max=*/true);
    }
    if (all) bi = i;
  }
  for (size_t j = 0; j < nu && bj == nu; ++j) {
    bool all = true;
    for (size_t m = 0; m < nu && all; ++m) {
      all = m == j || dominates(j, m, u_ub, n.ub_tc, /*want_max=*/false);
    }
    if (all) bj = j;
  }
  return bi != nl && bj != nu;
}

Status BlockSim::exec_fast_loop(const CNode& n) {
  size_t bi, bj;
  if (!binding_terms(n, bi, bj)) return fallback_node(n);
  const int64_t lo = n.lb.terms[bi].eval(uslots_.data());
  const int64_t hi = n.ub.terms[bj].eval(uslots_.data());
  const auto [ctx, cty] = n.lb_tc[bi];
  const auto [utx, uty] = n.ub_tc[bj];
  // Lockstep trip counts need ub - lb lane-invariant: the binding terms
  // must share thread coefficients, which then also give the loop
  // variable's lane decomposition. A coefficient mismatch means genuine
  // divergence — handled analytically too when no lane runs more than
  // one trip (tile-load loops striding by the thread count).
  if (ctx != utx || cty != uty) {
    return exec_masked_loop(n, lo, hi, ctx, cty, utx, uty);
  }
  // References were annotated against the global slot table; if the
  // table classified this variable lane-affine, the runtime resolution
  // must agree with it (it always does for lb-derived coefficients —
  // this is a cheap invariant check).
  const size_t vs = static_cast<size_t>(n.var_slot);
  if (k_.slot_affine[vs] &&
      (ctx != k_.slot_tx[vs] || cty != k_.slot_ty[vs])) {
    return fallback_node(n);
  }
  const int64_t trips = hi > lo ? (hi - lo + n.step - 1) / n.step : 0;
  // Loop maintenance: lockstep bounds mean every warp runs every trip,
  // so warp_iterations = warps * trips.
  counters_.instructions +=
      (2 * static_cast<int64_t>(warps_) * trips + n.unroll - 1) / n.unroll;
  if (trips == 0) return Status::ok();

  fast_var_stack_.push_back({n.var_slot, ctx, cty});
  bool collapsed = false;
  int64_t next = lo;  // first not-yet-executed trip value
  if (trips >= 3 && n.collapse_candidate &&
      collapse_ok_[static_cast<size_t>(n.loop_id)] &&
      collapse_bounds_ok(n, lo, lo + (trips - 1) * n.step)) {
    // Iteration 1 reaches steady state (branch pattern and reuse
    // relations are trip-invariant for collapse candidates); iteration
    // 2's counter delta then equals every later iteration's — provided
    // both iterations priced analytically throughout. Any interpreter
    // delegation (checked below via fallback_count_) voids the multiply
    // and the loop simply continues iterating; so does any masked round
    // (masked_count_), whose per-lane reuse state the analytic skip
    // cannot replay.
    const int64_t fb0 = fallback_count_;
    const int64_t mc0 = masked_count_;
    uslots_[static_cast<size_t>(n.var_slot)] = lo;
    lanes_synced_ = false;
    OA_RETURN_IF_ERROR(exec_fast(n.body));
    const int64_t mark = ++exec_gen_;
    uslots_[static_cast<size_t>(n.var_slot)] = lo + n.step;
    lanes_synced_ = false;
    const Counters before = counters_;
    const int64_t fast_before = fstats_.fast_statements;
    OA_RETURN_IF_ERROR(exec_fast(n.body));
    if (fallback_count_ == fb0 && masked_count_ == mc0) {
      const int64_t skipped = trips - 2;
      counters_ += (counters_ - before).scaled(skipped);
      fstats_.fast_statements +=
          (fstats_.fast_statements - fast_before) * skipped;
      fstats_.collapsed_loops += 1;
      fstats_.collapsed_iterations += skipped;
      // Advance the address state of every site the representative
      // iteration touched, as if the skipped iterations had run. Sites
      // behind untaken uniform branches keep their generation below
      // `mark` and stay untouched.
      for (int site : n.body_sites) {
        const size_t s = static_cast<size_t>(site);
        if (site_gen_[s] < mark) continue;
        const CRef* r = site_ref_[s];
        const int64_t delta =
            r->addr_lin.uniform.coeff_of(n.var_slot) * n.step;
        if (delta == 0) continue;
        site_base_[s] += delta * skipped;
        if (!line_addr_.empty() &&
            k_.arrays[static_cast<size_t>(r->array)].space ==
                ir::MemSpace::kGlobal) {
          // Fermi line cache: the per-lane lines shift by a whole
          // number of lines per trip (collapse_ok guarantees
          // alignment).
          const int64_t shift =
              delta / (dev_.transaction_bytes / elem_bytes(k_.precision)) *
              skipped;
          int64_t* row = line_addr_.data() + s * nlanes_;
          for (int l = 0; l < nlanes_; ++l) {
            if (row[l] >= 0) row[l] += shift;
          }
        }
      }
      uslots_[static_cast<size_t>(n.var_slot)] =
          lo + (trips - 1) * n.step;
      lanes_synced_ = false;
      collapsed = true;
    } else {
      next = lo + 2 * n.step;  // both representatives ran exactly
    }
  }
  if (!collapsed) {
    for (int64_t v = next; v < hi; v += n.step) {
      uslots_[static_cast<size_t>(n.var_slot)] = v;
      lanes_synced_ = false;
      OA_RETURN_IF_ERROR(exec_fast(n.body));
    }
  }
  fast_var_stack_.pop_back();
  return Status::ok();
}

Status BlockSim::exec_masked_loop(const CNode& n, int64_t ulb, int64_t uub,
                                  int64_t ltx, int64_t lty, int64_t utx,
                                  int64_t uty) {
  // Divergent loop, but analytically so: each lane's trip count is
  // ceil(delta(lane) / step) with delta = (uub - ulb) + (utx - ltx)*tx +
  // (uty - lty)*ty. When no lane runs more than one trip — the shape of
  // every tile-load loop `for (i = tid; i < T; i += nthreads)` — the
  // whole loop is one masked round over a statically known lane set.
  //
  // The references inside were annotated against the slot table, so the
  // loop variable must be lane-affine there with exactly the lb
  // coefficients (its per-lane value on the single trip is the lb).
  const size_t vs = static_cast<size_t>(n.var_slot);
  if (!k_.slot_affine[vs] || ltx != k_.slot_tx[vs] ||
      lty != k_.slot_ty[vs]) {
    return fallback_node(n);
  }
  int64_t dmn, dmx;
  affine_range(uub - ulb, utx - ltx, uty - lty, dmn, dmx);
  if (dmx > n.step) return fallback_node(n);  // some lane iterates twice
  if (dmx <= 0) return Status::ok();  // zero trips: interpreter charges 0

  // Active lanes (delta > 0), tracked with the covering range [l0, l1].
  std::vector<uint8_t> mask(static_cast<size_t>(nlanes_), 0);
  int l0 = -1, l1 = -1;
  {
    int64_t tx = tx0_, ty = ty0_;
    for (int l = 0; l < nlanes_; ++l) {
      const int64_t d = (uub - ulb) + (utx - ltx) * tx + (uty - lty) * ty;
      if (d > 0) {
        mask[static_cast<size_t>(l)] = 1;
        if (l0 < 0) l0 = l;
        l1 = l;
      }
      if (++tx == bx_) {
        tx = 0;
        ++ty;
      }
    }
  }
  // Loop maintenance mirrors the interpreter's single round: one
  // warp-iteration per warp with at least one live lane.
  int64_t warp_iterations = 0;
  for (int w = 0; w < nlanes_; w += dev_.warp_size) {
    const int we = std::min(w + dev_.warp_size, nlanes_);
    for (int l = w; l < we; ++l) {
      if (mask[static_cast<size_t>(l)]) {
        ++warp_iterations;
        break;
      }
    }
  }
  counters_.instructions +=
      (2 * warp_iterations + n.unroll - 1) / n.unroll;

  // Masked rounds advance per-lane reuse state, which an enclosing
  // collapse's analytic skip cannot replay — void any attempt.
  ++masked_count_;
  fast_var_stack_.push_back({n.var_slot, ltx, lty});
  uslots_[vs] = ulb;
  lanes_synced_ = false;
  const Status st = exec_masked(n.body, mask, l0, l1);
  fast_var_stack_.pop_back();
  return st;
}

Status BlockSim::exec_masked(const std::vector<CNode>& body,
                             const std::vector<uint8_t>& mask, int l0,
                             int l1) {
  const auto delegate = [&](const CNode& n) {
    ++fallback_count_;
    sync_fast_vars();
    std::vector<uint8_t> m(mask);  // exec_node wants a mutable mask
    return exec_node(n, m);
  };
  for (const CNode& n : body) {
    switch (n.kind) {
      case CNode::Kind::kLoop:
        OA_RETURN_IF_ERROR(delegate(n));
        break;
      case CNode::Kind::kAssign:
        if (n.fast) {
          OA_RETURN_IF_ERROR(exec_masked_assign(n, mask, l0, l1));
        } else {
          OA_RETURN_IF_ERROR(delegate(n));
        }
        break;
      case CNode::Kind::kSync: {
        // Mirrors the interpreter: a barrier under a partial mask is a
        // divergence error.
        for (int l = 0; l < nlanes_; ++l) {
          if (!mask[static_cast<size_t>(l)]) {
            return internal_error(
                "__syncthreads() under divergent control flow");
          }
        }
        ++fstats_.fast_statements;
        counters_.barriers += 1;
        counters_.instructions += warps_;
        break;
      }
      case CNode::Kind::kIf:
        if (n.preds.empty()) {
          OA_RETURN_IF_ERROR(exec_masked(n.then_body, mask, l0, l1));
        } else if (n.preds_uniform) {
          ++fstats_.fast_statements;
          // Predicate evaluation: per warp with >= 1 live lane.
          for (int w = 0; w < nlanes_; w += dev_.warp_size) {
            const int we = std::min(w + dev_.warp_size, nlanes_);
            for (int l = w; l < we; ++l) {
              if (mask[static_cast<size_t>(l)]) {
                counters_.instructions += 1;
                break;
              }
            }
          }
          bool pass = true;
          for (const CPred& p : n.preds) {
            if (!p.eval(uslots_.data())) {
              pass = false;
              break;
            }
          }
          OA_RETURN_IF_ERROR(
              exec_masked(pass ? n.then_body : n.else_body, mask, l0, l1));
        } else {
          OA_RETURN_IF_ERROR(delegate(n));
        }
        break;
    }
  }
  return Status::ok();
}

Status BlockSim::exec_masked_assign(const CNode& n,
                                    const std::vector<uint8_t>& mask,
                                    int l0, int l1) {
  ++fstats_.fast_statements;
  const CArray& lhs_arr = k_.arrays[static_cast<size_t>(n.lhs.array)];
  int active_total = 0;
  for (int w = 0; w < nlanes_; w += dev_.warp_size) {
    const int we = std::min(w + dev_.warp_size, nlanes_);
    int active = 0;
    for (int l = w; l < we; ++l) active += mask[static_cast<size_t>(l)];
    if (active > 0) {
      counters_.instructions +=
          n.arith_instructions +
          (lhs_arr.space != ir::MemSpace::kRegister ? 1 : 0);
    }
    active_total += active;
  }
  counters_.flops += static_cast<int64_t>(n.flops) * active_total;

  for (const CRef& ref : n.loads) {
    OA_RETURN_IF_ERROR(process_ref_masked(ref, /*is_store=*/false,
                                          /*count_inst=*/true, mask, l0,
                                          l1));
  }
  if (n.rmw_load) {
    OA_RETURN_IF_ERROR(process_ref_masked(n.lhs, /*is_store=*/false,
                                          /*count_inst=*/true, mask, l0,
                                          l1));
  }
  return process_ref_masked(n.lhs, /*is_store=*/true,
                            /*count_inst=*/false, mask, l0, l1);
}

Status BlockSim::process_ref_masked(const CRef& ref, bool is_store,
                                    bool count_inst,
                                    const std::vector<uint8_t>& mask,
                                    int l0, int l1) {
  const CArray& arr = k_.arrays[static_cast<size_t>(ref.array)];

  // Bounds check over the covering lane range (a superset of the active
  // set — conservative: a spurious hit just delegates to the exact
  // interpreter path, which only evaluates active lanes).
  {
    int64_t mn, mx;
    const int64_t ur = ref.row_lin.uniform.eval(uslots_.data());
    affine_range_lanes(ur, ref.row_lin.tx_coeff, ref.row_lin.ty_coeff, l0,
                       l1, mn, mx);
    bool oob = mn < 0 || mx >= arr.rows;
    if (!oob) {
      const int64_t uc = ref.col_lin.uniform.eval(uslots_.data());
      affine_range_lanes(uc, ref.col_lin.tx_coeff, ref.col_lin.ty_coeff,
                         l0, l1, mn, mx);
      oob = mn < 0 || mx >= arr.cols;
    }
    if (oob) {
      ++fallback_count_;
      sync_fast_vars();
      return process_ref(ref, is_store, mask, count_inst);
    }
  }

  // Materialize the affine addresses of the covering range once, then
  // run the interpreter's own per-lane reuse bookkeeping and per-group
  // counting over them — identical pricing, minus the per-lane
  // subscript evaluation.
  const int64_t ua = ref.addr_lin.uniform.eval(uslots_.data());
  if (!is_store) adopt_site_interp(ref);
  materialize_group(ref, ua, l0, l1 + 1);
  if (!is_store) {
    bool all_reused = true;
    for (int l = l0; l <= l1; ++l) {
      if (!mask[static_cast<size_t>(l)]) continue;
      const int64_t addr = scratch_addr_[static_cast<size_t>(l)];
      int64_t& last =
          reuse_addr_[static_cast<size_t>(ref.site) * nlanes_ + l];
      if (last != addr) {
        all_reused = false;
        last = addr;
      }
    }
    if (all_reused) return Status::ok();  // register-cached
  }

  const int group = arr.space == ir::MemSpace::kShared
                        ? dev_.shared_banks
                        : (dev_.coalescing == CoalescingModel::kFermi
                               ? dev_.warp_size
                               : dev_.warp_size / 2);
  for (int g0 = 0; g0 < nlanes_; g0 += group) {
    const int g1 = std::min(g0 + group, nlanes_);
    if (g1 <= l0 || g0 > l1) continue;
    int active = 0;
    for (int l = g0; l < g1; ++l) active += mask[static_cast<size_t>(l)];
    if (active == 0) continue;
    count_group(arr, ref, is_store, mask, g0, g1, active, count_inst);
  }
  return Status::ok();
}

void BlockSim::adopt_site_interp(const CRef& ref) {
  const size_t s = static_cast<size_t>(ref.site);
  if (site_valid_[s]) {
    // The last visit was analytic: walk the triple's address vector
    // into the reuse row, reproducing exactly the per-lane state that
    // visit would have written. Lane order follows the contiguous
    // absolute-lane interval (tx advances, wrapping into the next row),
    // so the row step applies within a row and the wrap step across
    // rows; whichever of the two a geometry never takes was stored as
    // zero and is never read.
    int64_t* row = reuse_addr_.data() + s * static_cast<size_t>(nlanes_);
    int64_t addr = site_base_[s];
    int64_t tx = tx0_;
    for (int l = 0; l < nlanes_; ++l) {
      row[l] = addr;
      if (tx + 1 < bx_) {
        ++tx;
        addr += site_rowc_[s];
      } else {
        tx = 0;
        addr += site_wrapc_[s];
      }
    }
    site_valid_[s] = 0;
  }
  site_interp_[s] = 1;
}

bool BlockSim::collapse_bounds_ok(const CNode& n, int64_t lo,
                                  int64_t last) {
  // The proof runs in the lane-affine frame: `iv` holds intervals of
  // *uniform components* (points from the live uniform slot array;
  // [lo, last] for the collapsed variable; bound-derived supersets for
  // nested loop variables), and each reference adds the spread of its
  // own aggregated thread coefficients. Keeping the thread terms
  // aggregated preserves cancellation in subscripts like i - 4*ty,
  // which slot-wise interval arithmetic would tear apart.
  std::vector<std::pair<int64_t, int64_t>> iv(
      static_cast<size_t>(k_.num_slots));
  for (int s = 0; s < k_.num_slots; ++s) {
    const int64_t v = uslots_[static_cast<size_t>(s)];
    iv[static_cast<size_t>(s)] = {v, v};
  }
  iv[static_cast<size_t>(n.var_slot)] = {lo, last};  // step > 0
  return sites_in_bounds(n.body, iv);
}

bool BlockSim::sites_in_bounds(
    const std::vector<CNode>& body,
    std::vector<std::pair<int64_t, int64_t>>& iv) const {
  // `iv` holds uniform-component intervals. Thread slots sit at their
  // uniform component 0 — their contribution enters through the
  // aggregated lane-affine coefficients below, never slot-wise.
  const auto expr_range = [&iv](const CExpr& e) {
    int64_t lo = e.constant, hi = e.constant;
    for (const auto& [slot, c] : e.terms) {
      const auto& [slo, shi] = iv[static_cast<size_t>(slot)];
      if (c >= 0) {
        lo += c * slo;
        hi += c * shi;
      } else {
        lo += c * shi;
        hi += c * slo;
      }
    }
    return std::pair<int64_t, int64_t>{lo, hi};
  };
  // Per-lane range of a lane-affine subscript: uniform-component
  // interval plus the exact spread of the aggregated thread
  // coefficients over the lane range.
  const auto lin_range = [&](const CLin& l) {
    auto [lo, hi] = expr_range(l.uniform);
    int64_t mn, mx;
    affine_range(0, l.tx_coeff, l.ty_coeff, mn, mx);
    return std::pair<int64_t, int64_t>{lo + mn, hi + mx};
  };
  const auto ref_ok = [&](const CRef& r) {
    // Non-affine references execute through the interpreter, which
    // voids any collapse attempt before the multiply; nothing to prove.
    if (!r.fast) return false;
    const CArray& arr = k_.arrays[static_cast<size_t>(r.array)];
    const auto [rlo, rhi] = lin_range(r.row_lin);
    const auto [clo, chi] = lin_range(r.col_lin);
    return rlo >= 0 && rhi < arr.rows && clo >= 0 && chi < arr.cols;
  };
  for (const CNode& n : body) {
    switch (n.kind) {
      case CNode::Kind::kAssign: {
        for (const CRef& r : n.loads) {
          if (!ref_ok(r)) return false;
        }
        if (!ref_ok(n.lhs)) return false;
        break;
      }
      case CNode::Kind::kLoop: {
        // A nested loop with irregular bounds falls back wholesale and
        // the attempt is voided; only lockstep loops need the proof.
        if (!n.bounds_uniform) return false;
        // Nested bounds never reference the collapsed variable (control
        // independence), so their binding terms are the same in every
        // trip. When every term's uniform component is a point, resolve
        // the binding terms exactly — the same lane-domination test the
        // executor runs — instead of unioning over all terms, which
        // would drag boundary-guard terms like min(N, affine) into the
        // interval.
        const size_t nl = n.lb.terms.size(), nu = n.ub.terms.size();
        std::vector<std::pair<int64_t, int64_t>> lbr(nl), ubr(nu);
        bool points = true;
        for (size_t i = 0; i < nl; ++i) {
          lbr[i] = expr_range(n.lb.terms[i]);
          points &= lbr[i].first == lbr[i].second;
        }
        for (size_t j = 0; j < nu; ++j) {
          ubr[j] = expr_range(n.ub.terms[j]);
          points &= ubr[j].first == ubr[j].second;
        }
        int64_t vlo, vhi;
        if (points) {
          const auto binds = [&](size_t i, size_t m, const auto& r,
                                 const auto& tc, bool want_max) {
            int64_t mn, mx;
            affine_range(r[i].first - r[m].first,
                         tc[i].first - tc[m].first,
                         tc[i].second - tc[m].second, mn, mx);
            return want_max ? mn >= 0 : mx <= 0;
          };
          size_t bi = nl, bj = nu;
          for (size_t i = 0; i < nl && bi == nl; ++i) {
            bool all = true;
            for (size_t m = 0; m < nl && all; ++m) {
              all = m == i || binds(i, m, lbr, n.lb_tc, true);
            }
            if (all) bi = i;
          }
          for (size_t j = 0; j < nu && bj == nu; ++j) {
            bool all = true;
            for (size_t m = 0; m < nu && all; ++m) {
              all = m == j || binds(j, m, ubr, n.ub_tc, false);
            }
            if (all) bj = j;
          }
          // No block-wide binding term means the nested loop diverges
          // and falls back, voiding the attempt.
          if (bi == nl || bj == nu) return false;
          vlo = lbr[bi].first;
          vhi = ubr[bj].first - 1;
        } else {
          // Interval-valued terms (e.g. triangular nests over the
          // collapsed variable's subscripts): a union over all terms is
          // a sound superset whichever terms bind.
          vlo = INT64_MAX;
          vhi = INT64_MIN;
          for (size_t i = 0; i < nl; ++i) vlo = std::min(vlo, lbr[i].first);
          for (size_t j = 0; j < nu; ++j) {
            vhi = std::max(vhi, ubr[j].second - 1);
          }
        }
        const auto saved = iv[static_cast<size_t>(n.var_slot)];
        iv[static_cast<size_t>(n.var_slot)] = {vlo, std::max(vlo, vhi)};
        const bool ok = sites_in_bounds(n.body, iv);
        iv[static_cast<size_t>(n.var_slot)] = saved;
        if (!ok) return false;
        break;
      }
      case CNode::Kind::kSync:
        break;
      case CNode::Kind::kIf: {
        if (!sites_in_bounds(n.then_body, iv)) return false;
        if (!sites_in_bounds(n.else_body, iv)) return false;
        break;
      }
    }
  }
  return true;
}

}  // namespace oa::gpusim
