#include "gpusim/compiled.hpp"

#include <map>

#include "support/strings.hpp"

namespace oa::gpusim {

namespace {

struct CompileState {
  const ir::Program* program = nullptr;
  const ir::Env* params = nullptr;
  const std::map<std::string, bool>* bools = nullptr;
  std::map<std::string, int, std::less<>> slots;
  std::map<std::string, int, std::less<>> array_ids;
  CompiledKernel* out = nullptr;

  int slot_for(const std::string& name) {
    auto it = slots.find(name);
    if (it != slots.end()) return it->second;
    const int id = out->num_slots++;
    slots.emplace(name, id);
    return id;
  }
};

StatusOr<CExpr> compile_expr(const ir::AffineExpr& e, CompileState& st) {
  CExpr out;
  out.constant = e.constant_term();
  for (const std::string& s : e.symbols()) {
    auto p = st.params->find(s);
    if (p != st.params->end()) {
      out.constant += e.coeff(s) * p->second;
      continue;
    }
    out.terms.emplace_back(st.slot_for(s), e.coeff(s));
  }
  return out;
}

StatusOr<CBound> compile_bound(const ir::Bound& b, CompileState& st) {
  CBound out;
  for (const auto& t : b.terms()) {
    OA_ASSIGN_OR_RETURN(CExpr e, compile_expr(t, st));
    out.terms.push_back(std::move(e));
  }
  if (out.terms.empty()) return internal_error("empty bound");
  return out;
}

StatusOr<CRef> compile_ref(const ir::ArrayRef& r, CompileState& st) {
  CRef out;
  auto it = st.array_ids.find(r.array);
  if (it == st.array_ids.end()) {
    return internal_error("reference to unknown array '" + r.array + "'");
  }
  out.array = it->second;
  out.site = st.out->num_sites++;
  if (r.index.size() != 2) {
    return internal_error("non-2D reference to '" + r.array + "'");
  }
  OA_ASSIGN_OR_RETURN(out.row, compile_expr(r.index[0], st));
  OA_ASSIGN_OR_RETURN(out.col, compile_expr(r.index[1], st));
  return out;
}

StatusOr<std::unique_ptr<CVal>> compile_val(const ir::Expr& e,
                                            CompileState& st,
                                            std::vector<CRef>& loads) {
  auto out = std::make_unique<CVal>();
  switch (e.kind) {
    case ir::Expr::Kind::kConst:
      out->kind = CVal::Kind::kConst;
      out->constant = static_cast<float>(e.value);
      return out;
    case ir::Expr::Kind::kScalar:
      // Scalars (alpha/beta) are not used by the BLAS3 sources in this
      // reproduction; treat unknown scalars as 1.0.
      out->kind = CVal::Kind::kConst;
      out->constant = 1.0f;
      return out;
    case ir::Expr::Kind::kRef: {
      out->kind = CVal::Kind::kRef;
      OA_ASSIGN_OR_RETURN(out->ref, compile_ref(e.ref, st));
      loads.push_back(out->ref);
      return out;
    }
    case ir::Expr::Kind::kNeg: {
      out->kind = CVal::Kind::kNeg;
      OA_ASSIGN_OR_RETURN(out->a, compile_val(*e.a, st, loads));
      return out;
    }
    case ir::Expr::Kind::kAdd:
    case ir::Expr::Kind::kSub:
    case ir::Expr::Kind::kMul:
    case ir::Expr::Kind::kDiv: {
      switch (e.kind) {
        case ir::Expr::Kind::kAdd: out->kind = CVal::Kind::kAdd; break;
        case ir::Expr::Kind::kSub: out->kind = CVal::Kind::kSub; break;
        case ir::Expr::Kind::kMul: out->kind = CVal::Kind::kMul; break;
        default: out->kind = CVal::Kind::kDiv; break;
      }
      OA_ASSIGN_OR_RETURN(out->a, compile_val(*e.a, st, loads));
      OA_ASSIGN_OR_RETURN(out->b, compile_val(*e.b, st, loads));
      return out;
    }
  }
  return internal_error("unhandled expression kind");
}

StatusOr<std::vector<CNode>> compile_body(
    const std::vector<ir::NodePtr>& body, CompileState& st);

StatusOr<CNode> compile_node(const ir::Node& n, CompileState& st) {
  CNode out;
  switch (n.kind) {
    case ir::Node::Kind::kLoop: {
      out.kind = CNode::Kind::kLoop;
      out.var_slot = st.slot_for(n.var);
      OA_ASSIGN_OR_RETURN(out.lb, compile_bound(n.lb, st));
      OA_ASSIGN_OR_RETURN(out.ub, compile_bound(n.ub, st));
      out.step = n.step;
      out.unroll = n.unroll;
      OA_ASSIGN_OR_RETURN(out.body, compile_body(n.body, st));
      return out;
    }
    case ir::Node::Kind::kAssign: {
      out.kind = CNode::Kind::kAssign;
      OA_ASSIGN_OR_RETURN(out.lhs, compile_ref(n.lhs, st));
      out.op = n.op;
      OA_ASSIGN_OR_RETURN(out.rhs, compile_val(*n.rhs, st, out.loads));
      out.rmw_load = n.op != ir::AssignOp::kAssign;
      const int arith = n.rhs->count_arith_ops() +
                        (n.op != ir::AssignOp::kAssign ? 1 : 0);
      // A fused multiply-add issues as one instruction.
      const bool mad = (n.op == ir::AssignOp::kAddAssign ||
                        n.op == ir::AssignOp::kSubAssign) &&
                       n.rhs->kind == ir::Expr::Kind::kMul &&
                       n.rhs->count_arith_ops() == 1;
      out.arith_instructions = mad ? 1 : std::max(1, arith);
      out.flops = arith;
      return out;
    }
    case ir::Node::Kind::kSync:
      out.kind = CNode::Kind::kSync;
      return out;
    case ir::Node::Kind::kIf: {
      // Runtime booleans are resolved now: the launcher effectively
      // picks a kernel version.
      if (!n.bool_param.empty()) {
        auto it = st.bools->find(n.bool_param);
        const bool value = it != st.bools->end() && it->second;
        OA_ASSIGN_OR_RETURN(
            std::vector<CNode> chosen,
            compile_body(value ? n.then_body : n.else_body, st));
        if (!n.conds.empty()) {
          return internal_error(
              "mixed bool-param and affine guard unsupported");
        }
        // Splice: represent the selected branch as an unconditional If.
        out.kind = CNode::Kind::kIf;
        out.then_body = std::move(chosen);
        return out;
      }
      out.kind = CNode::Kind::kIf;
      for (const auto& p : n.conds) {
        OA_ASSIGN_OR_RETURN(CExpr e, compile_expr(p.expr, st));
        out.preds.push_back(CPred{std::move(e), p.op});
      }
      OA_ASSIGN_OR_RETURN(out.then_body, compile_body(n.then_body, st));
      OA_ASSIGN_OR_RETURN(out.else_body, compile_body(n.else_body, st));
      return out;
    }
  }
  return internal_error("unhandled node kind");
}

StatusOr<std::vector<CNode>> compile_body(
    const std::vector<ir::NodePtr>& body, CompileState& st) {
  std::vector<CNode> out;
  out.reserve(body.size());
  for (const auto& n : body) {
    OA_ASSIGN_OR_RETURN(CNode c, compile_node(*n, st));
    out.push_back(std::move(c));
  }
  return out;
}

void signature_walk(const std::vector<CNode>& body, int64_t* slots,
                    int64_t& hash) {
  for (const CNode& n : body) {
    switch (n.kind) {
      case CNode::Kind::kLoop: {
        const int64_t lo = n.lb.eval_max(slots);
        const int64_t hi = n.ub.eval_min(slots);
        const int64_t extent = hi > lo ? hi - lo : 0;
        hash = hash * 1000003 + extent;
        slots[n.var_slot] = lo;
        signature_walk(n.body, slots, hash);
        break;
      }
      case CNode::Kind::kAssign:
      case CNode::Kind::kSync:
        break;
      case CNode::Kind::kIf:
        signature_walk(n.then_body, slots, hash);
        signature_walk(n.else_body, slots, hash);
        break;
    }
  }
}

}  // namespace

int64_t CompiledKernel::signature(int64_t by, int64_t bx) const {
  std::vector<int64_t> slots(static_cast<size_t>(num_slots), 0);
  if (block_y_slot >= 0) slots[static_cast<size_t>(block_y_slot)] = by;
  if (block_x_slot >= 0) slots[static_cast<size_t>(block_x_slot)] = bx;
  int64_t hash = 1469598103;
  signature_walk(body, slots.data(), hash);
  return hash;
}

StatusOr<CompiledKernel> compile_kernel(
    const ir::Program& program, const ir::Kernel& kernel,
    const ir::Env& int_params,
    const std::map<std::string, bool>& bool_params) {
  CompiledKernel out;
  out.name = kernel.name;
  OA_ASSIGN_OR_RETURN(out.launch, ir::launch_config(kernel, int_params));

  CompileState st;
  st.program = &program;
  st.params = &int_params;
  st.bools = &bool_params;
  st.out = &out;

  // Array table: globals then kernel locals.
  Status array_error = Status::ok();
  auto add_array = [&](const ir::ArrayDecl& d) {
    CArray a;
    a.name = d.name;
    a.space = d.space;
    a.rows = d.num_rows(int_params);
    a.cols = d.num_cols(int_params);
    a.ld = d.leading_dim(int_params);
    a.elements = a.ld * a.cols;
    if (a.rows <= 0 || a.cols <= 0 ||
        a.elements > (int64_t{1} << 34)) {
      if (array_error.is_ok()) {
        array_error = internal_error(
            "array '" + d.name + "' has degenerate shape " +
            std::to_string(a.rows) + "x" + std::to_string(a.cols));
      }
    }
    st.array_ids.emplace(d.name, static_cast<int>(out.arrays.size()));
    out.arrays.push_back(a);
  };
  for (const auto& d : program.globals) add_array(d);
  for (const auto& d : kernel.local_arrays) {
    add_array(d);
    if (d.space == ir::MemSpace::kShared) {
      out.shared_bytes += d.num_elements(int_params) * 4;
    } else if (d.space == ir::MemSpace::kRegister) {
      out.regs_per_thread += d.num_elements(int_params);
    }
  }

  OA_RETURN_IF_ERROR(array_error);

  // Descend through the mapped loops to the executed region.
  const std::vector<ir::NodePtr>* region = &kernel.body;
  while (region->size() == 1 && (*region)[0]->is_loop() &&
         (*region)[0]->map != ir::LoopMap::kNone) {
    const ir::Node& loop = *(*region)[0];
    const int slot = st.slot_for(loop.var);
    switch (loop.map) {
      case ir::LoopMap::kBlockY:
      case ir::LoopMap::kBlockYSerial:
        out.block_y_slot = slot;
        break;
      case ir::LoopMap::kBlockX:
        out.block_x_slot = slot;
        break;
      case ir::LoopMap::kThreadY:
        out.thread_y_slot = slot;
        break;
      case ir::LoopMap::kThreadX:
        out.thread_x_slot = slot;
        break;
      case ir::LoopMap::kNone:
        break;
    }
    region = &loop.body;
  }
  // A mapped loop below unmapped structure is unsupported.
  bool bad_nesting = false;
  ir::walk_const(*region, [&](const ir::Node& n) {
    if (n.is_loop() && n.map != ir::LoopMap::kNone) bad_nesting = true;
    return true;
  });
  if (bad_nesting) {
    return internal_error("mapped loop below sequential structure in '" +
                          kernel.name + "'");
  }

  OA_ASSIGN_OR_RETURN(out.body, compile_body(*region, st));
  return out;
}

}  // namespace oa::gpusim
