#include "gpusim/compiled.hpp"

#include <map>

#include "support/strings.hpp"

namespace oa::gpusim {

namespace {

struct CompileState {
  const ir::Program* program = nullptr;
  const ir::Env* params = nullptr;
  const std::map<std::string, bool>* bools = nullptr;
  std::map<std::string, int, std::less<>> slots;
  std::map<std::string, int, std::less<>> array_ids;
  CompiledKernel* out = nullptr;

  int slot_for(const std::string& name) {
    auto it = slots.find(name);
    if (it != slots.end()) return it->second;
    const int id = out->num_slots++;
    slots.emplace(name, id);
    return id;
  }
};

StatusOr<CExpr> compile_expr(const ir::AffineExpr& e, CompileState& st) {
  CExpr out;
  out.constant = e.constant_term();
  for (const std::string& s : e.symbols()) {
    auto p = st.params->find(s);
    if (p != st.params->end()) {
      out.constant += e.coeff(s) * p->second;
      continue;
    }
    out.terms.emplace_back(st.slot_for(s), e.coeff(s));
  }
  return out;
}

StatusOr<CBound> compile_bound(const ir::Bound& b, CompileState& st) {
  CBound out;
  for (const auto& t : b.terms()) {
    OA_ASSIGN_OR_RETURN(CExpr e, compile_expr(t, st));
    out.terms.push_back(std::move(e));
  }
  if (out.terms.empty()) return internal_error("empty bound");
  return out;
}

StatusOr<CRef> compile_ref(const ir::ArrayRef& r, CompileState& st) {
  CRef out;
  auto it = st.array_ids.find(r.array);
  if (it == st.array_ids.end()) {
    return internal_error("reference to unknown array '" + r.array + "'");
  }
  out.array = it->second;
  out.site = st.out->num_sites++;
  if (r.index.size() != 2) {
    return internal_error("non-2D reference to '" + r.array + "'");
  }
  OA_ASSIGN_OR_RETURN(out.row, compile_expr(r.index[0], st));
  OA_ASSIGN_OR_RETURN(out.col, compile_expr(r.index[1], st));
  return out;
}

/// Emit `e` onto the postfix tape. `depth` tracks the running value
/// stack; `max_depth` records the high-water mark the evaluator must
/// reserve.
Status emit_tape(const ir::Expr& e, CompileState& st, CNode& node,
                 int& depth, int& max_depth) {
  auto push = [&](COp op) {
    node.tape.push_back(op);
    ++depth;
    max_depth = std::max(max_depth, depth);
  };
  switch (e.kind) {
    case ir::Expr::Kind::kConst:
      push(COp{COp::Kind::kConst,
               round_to(st.program->precision, e.value), -1});
      return Status::ok();
    case ir::Expr::Kind::kScalar:
      // Scalars (alpha/beta) are not used by the BLAS3 sources in this
      // reproduction; treat unknown scalars as 1.0.
      push(COp{COp::Kind::kConst, 1.0, -1});
      return Status::ok();
    case ir::Expr::Kind::kRef: {
      OA_ASSIGN_OR_RETURN(CRef ref, compile_ref(e.ref, st));
      const int load = static_cast<int>(node.loads.size());
      node.loads.push_back(std::move(ref));
      push(COp{COp::Kind::kLoad, 0.0f, load});
      return Status::ok();
    }
    case ir::Expr::Kind::kNeg:
      OA_RETURN_IF_ERROR(emit_tape(*e.a, st, node, depth, max_depth));
      node.tape.push_back(COp{COp::Kind::kNeg, 0.0f, -1});
      return Status::ok();
    case ir::Expr::Kind::kAdd:
    case ir::Expr::Kind::kSub:
    case ir::Expr::Kind::kMul:
    case ir::Expr::Kind::kDiv: {
      OA_RETURN_IF_ERROR(emit_tape(*e.a, st, node, depth, max_depth));
      OA_RETURN_IF_ERROR(emit_tape(*e.b, st, node, depth, max_depth));
      COp op;
      switch (e.kind) {
        case ir::Expr::Kind::kAdd: op.kind = COp::Kind::kAdd; break;
        case ir::Expr::Kind::kSub: op.kind = COp::Kind::kSub; break;
        case ir::Expr::Kind::kMul: op.kind = COp::Kind::kMul; break;
        default: op.kind = COp::Kind::kDiv; break;
      }
      node.tape.push_back(op);
      --depth;  // two operands popped, one result pushed
      return Status::ok();
    }
  }
  return internal_error("unhandled expression kind");
}

StatusOr<std::vector<CNode>> compile_body(
    const std::vector<ir::NodePtr>& body, CompileState& st);

StatusOr<CNode> compile_node(const ir::Node& n, CompileState& st) {
  CNode out;
  switch (n.kind) {
    case ir::Node::Kind::kLoop: {
      out.kind = CNode::Kind::kLoop;
      out.var_slot = st.slot_for(n.var);
      OA_ASSIGN_OR_RETURN(out.lb, compile_bound(n.lb, st));
      OA_ASSIGN_OR_RETURN(out.ub, compile_bound(n.ub, st));
      out.step = n.step;
      out.unroll = n.unroll;
      OA_ASSIGN_OR_RETURN(out.body, compile_body(n.body, st));
      return out;
    }
    case ir::Node::Kind::kAssign: {
      out.kind = CNode::Kind::kAssign;
      OA_ASSIGN_OR_RETURN(out.lhs, compile_ref(n.lhs, st));
      out.op = n.op;
      int depth = 0;
      OA_RETURN_IF_ERROR(emit_tape(*n.rhs, st, out, depth, out.tape_depth));
      if (out.tape_depth > kMaxTapeDepth) {
        return internal_error("rhs exceeds the value-stack cap");
      }
      out.rmw_load = n.op != ir::AssignOp::kAssign;
      const int arith = n.rhs->count_arith_ops() +
                        (n.op != ir::AssignOp::kAssign ? 1 : 0);
      // A fused multiply-add issues as one instruction.
      const bool mad = (n.op == ir::AssignOp::kAddAssign ||
                        n.op == ir::AssignOp::kSubAssign) &&
                       n.rhs->kind == ir::Expr::Kind::kMul &&
                       n.rhs->count_arith_ops() == 1;
      out.arith_instructions = mad ? 1 : std::max(1, arith);
      out.flops = arith;
      return out;
    }
    case ir::Node::Kind::kSync:
      out.kind = CNode::Kind::kSync;
      return out;
    case ir::Node::Kind::kIf: {
      // Runtime booleans are resolved now: the launcher effectively
      // picks a kernel version.
      if (!n.bool_param.empty()) {
        auto it = st.bools->find(n.bool_param);
        const bool value = it != st.bools->end() && it->second;
        OA_ASSIGN_OR_RETURN(
            std::vector<CNode> chosen,
            compile_body(value ? n.then_body : n.else_body, st));
        if (!n.conds.empty()) {
          return internal_error(
              "mixed bool-param and affine guard unsupported");
        }
        // Splice: represent the selected branch as an unconditional If.
        out.kind = CNode::Kind::kIf;
        out.then_body = std::move(chosen);
        return out;
      }
      out.kind = CNode::Kind::kIf;
      for (const auto& p : n.conds) {
        OA_ASSIGN_OR_RETURN(CExpr e, compile_expr(p.expr, st));
        out.preds.push_back(CPred{std::move(e), p.op});
      }
      OA_ASSIGN_OR_RETURN(out.then_body, compile_body(n.then_body, st));
      OA_ASSIGN_OR_RETURN(out.else_body, compile_body(n.else_body, st));
      return out;
    }
  }
  return internal_error("unhandled node kind");
}

StatusOr<std::vector<CNode>> compile_body(
    const std::vector<ir::NodePtr>& body, CompileState& st) {
  std::vector<CNode> out;
  out.reserve(body.size());
  for (const auto& n : body) {
    OA_ASSIGN_OR_RETURN(CNode c, compile_node(*n, st));
    out.push_back(std::move(c));
  }
  return out;
}

void signature_walk(const std::vector<CNode>& body, int64_t* slots,
                    uint64_t& hash) {
  for (const CNode& n : body) {
    switch (n.kind) {
      case CNode::Kind::kLoop: {
        const int64_t lo = n.lb.eval_max(slots);
        const int64_t hi = n.ub.eval_min(slots);
        const int64_t extent = hi > lo ? hi - lo : 0;
        // Unsigned: the polynomial mix overflows by design.
        hash = hash * 1000003u + static_cast<uint64_t>(extent);
        slots[n.var_slot] = lo;
        signature_walk(n.body, slots, hash);
        break;
      }
      case CNode::Kind::kAssign:
      case CNode::Kind::kSync:
        break;
      case CNode::Kind::kIf:
        signature_walk(n.then_body, slots, hash);
        signature_walk(n.else_body, slots, hash);
        break;
    }
  }
}

// ---- Fast-path annotation ------------------------------------------
//
// Everything below is static analysis over the compiled kernel; the
// warp-analytic executor in block_sim.cpp consults only the flags set
// here, so whether a statement takes the fast path never depends on
// runtime data.

/// Per-slot lane-affine classification under construction: affine[s]
/// says lanes hold uniform_component + tx[s]*tx + ty[s]*ty; `defined`
/// marks loop variables whose coefficients a defining loop has pinned
/// (a second defining loop must agree or the slot drops to irregular).
struct AffineTable {
  std::vector<uint8_t> affine;
  std::vector<int64_t> tx, ty;
  std::vector<uint8_t> defined;
};

/// Aggregated thread coefficients of one expression, via the table.
/// Returns false when any referenced slot is not lane-affine.
bool expr_coeffs(const CExpr& e, const AffineTable& t, int64_t& ctx,
                 int64_t& cty) {
  ctx = 0;
  cty = 0;
  for (const auto& [slot, c] : e.terms) {
    const size_t s = static_cast<size_t>(slot);
    if (!t.affine[s]) return false;
    ctx += c * t.tx[s];
    cty += c * t.ty[s];
  }
  return true;
}

/// Shared thread coefficients of a whole max/min bound: every term must
/// be lane-affine with identical aggregated coefficients — then the
/// per-lane max/min always picks the same term and the bound itself is
/// lane-affine with those coefficients.
bool bound_coeffs(const CBound& b, const AffineTable& t, bool& first,
                  int64_t& ctx, int64_t& cty) {
  for (const CExpr& term : b.terms) {
    int64_t x, y;
    if (!expr_coeffs(term, t, x, y)) return false;
    if (first) {
      ctx = x;
      cty = y;
      first = false;
    } else if (x != ctx || y != cty) {
      return false;
    }
  }
  return true;
}

/// Fixed point of the slot classification. A loop variable's lane
/// decomposition is shaped by its *lower* bound only (the value is
/// lb + trips*step; the upper bound just stops the iteration, and the
/// executor separately verifies lockstep trip counts at runtime).
/// Monotone: affinity only ever drops, and a loop variable's
/// coefficients are pinned once — a conflicting later definition (slot
/// reuse across loops) drops the slot to irregular instead of
/// re-pinning.
void affinity_walk(const std::vector<CNode>& body, AffineTable& t,
                   bool& changed) {
  for (const CNode& n : body) {
    switch (n.kind) {
      case CNode::Kind::kLoop: {
        bool first = true;
        int64_t ctx = 0, cty = 0;
        const bool ok = bound_coeffs(n.lb, t, first, ctx, cty);
        const size_t v = static_cast<size_t>(n.var_slot);
        if (!ok) {
          if (t.affine[v]) {
            t.affine[v] = 0;
            changed = true;
          }
        } else if (t.affine[v]) {
          if (!t.defined[v]) {
            t.defined[v] = 1;
            if (t.tx[v] != ctx || t.ty[v] != cty) {
              t.tx[v] = ctx;
              t.ty[v] = cty;
              changed = true;
            }
          } else if (t.tx[v] != ctx || t.ty[v] != cty) {
            t.affine[v] = 0;
            changed = true;
          }
        }
        affinity_walk(n.body, t, changed);
        break;
      }
      case CNode::Kind::kAssign:
      case CNode::Kind::kSync:
        break;
      case CNode::Kind::kIf:
        affinity_walk(n.then_body, t, changed);
        affinity_walk(n.else_body, t, changed);
        break;
    }
  }
}

struct Annotator {
  CompiledKernel& k;
  const AffineTable& t;

  CLin lin_of(const CExpr& e) const {
    CLin out;
    out.uniform.constant = e.constant;
    out.uniform_ok = true;
    for (const auto& [slot, c] : e.terms) {
      const size_t s = static_cast<size_t>(slot);
      if (!t.affine[s]) out.uniform_ok = false;
      out.tx_coeff += c * t.tx[s];
      out.ty_coeff += c * t.ty[s];
      // Thread indices live entirely in the coefficients; every other
      // slot keeps its term — the fast path's uniform slot array holds
      // lane-invariant components (0 for the thread slots), so
      // evaluating `uniform` there yields exactly the lane-invariant
      // part of the value.
      if (slot == k.thread_x_slot || slot == k.thread_y_slot) continue;
      out.uniform.terms.emplace_back(slot, c);
    }
    return out;
  }

  /// Lane-invariant predicate: every slot lane-affine and the thread
  /// coefficients cancel, so evaluating on the uniform components gives
  /// the exact per-lane value.
  bool pred_uniform(const CExpr& e) const {
    int64_t ctx, cty;
    return expr_coeffs(e, t, ctx, cty) && ctx == 0 && cty == 0;
  }

  void annotate_ref(CRef& r) const {
    r.row_lin = lin_of(r.row);
    r.col_lin = lin_of(r.col);
    // Flat column-major address row + col*ld, ld folded in now.
    const int64_t ld = k.arrays[static_cast<size_t>(r.array)].ld;
    CExpr addr;
    addr.constant = r.row.constant + r.col.constant * ld;
    addr.terms = r.row.terms;
    for (const auto& [slot, c] : r.col.terms) {
      bool merged = false;
      for (auto& [s2, c2] : addr.terms) {
        if (s2 == slot) {
          c2 += c * ld;
          merged = true;
          break;
        }
      }
      if (!merged) addr.terms.emplace_back(slot, c * ld);
    }
    r.addr_lin = lin_of(addr);
    r.fast = r.row_lin.uniform_ok && r.col_lin.uniform_ok;
  }

  /// True when no predicate or loop bound in `body` references `slot`
  /// (references in array subscripts are fine — they are the affine
  /// shift collapsing exploits).
  bool control_independent(const std::vector<CNode>& body, int slot) const {
    for (const CNode& n : body) {
      switch (n.kind) {
        case CNode::Kind::kLoop:
          for (const CExpr& t : n.lb.terms) {
            if (t.references(slot)) return false;
          }
          for (const CExpr& t : n.ub.terms) {
            if (t.references(slot)) return false;
          }
          if (!control_independent(n.body, slot)) return false;
          break;
        case CNode::Kind::kAssign:
        case CNode::Kind::kSync:
          break;
        case CNode::Kind::kIf:
          for (const CPred& p : n.preds) {
            if (p.expr.references(slot)) return false;
          }
          if (!control_independent(n.then_body, slot)) return false;
          if (!control_independent(n.else_body, slot)) return false;
          break;
      }
    }
    return true;
  }

  void collect_sites(const std::vector<CNode>& body,
                     std::vector<int>& out) const {
    for (const CNode& n : body) {
      switch (n.kind) {
        case CNode::Kind::kLoop:
          collect_sites(n.body, out);
          break;
        case CNode::Kind::kAssign:
          for (const CRef& l : n.loads) out.push_back(l.site);
          out.push_back(n.lhs.site);
          break;
        case CNode::Kind::kSync:
          break;
        case CNode::Kind::kIf:
          collect_sites(n.then_body, out);
          collect_sites(n.else_body, out);
          break;
      }
    }
  }

  /// Per-term thread coefficients of a bound; false when any term
  /// references an irregular slot.
  bool bound_term_coeffs(const CBound& b,
                         std::vector<std::pair<int64_t, int64_t>>& out)
      const {
    out.clear();
    out.reserve(b.terms.size());
    for (const CExpr& term : b.terms) {
      int64_t ctx, cty;
      if (!expr_coeffs(term, t, ctx, cty)) return false;
      out.emplace_back(ctx, cty);
    }
    return true;
  }

  void annotate_body(std::vector<CNode>& body) const {
    for (CNode& n : body) {
      switch (n.kind) {
        case CNode::Kind::kLoop: {
          n.loop_id = k.num_loops++;
          n.bounds_uniform = n.step > 0 &&
                             bound_term_coeffs(n.lb, n.lb_tc) &&
                             bound_term_coeffs(n.ub, n.ub_tc);
          annotate_body(n.body);
          // Collapsing is decided per execution: the executor attempts
          // it whenever the bounds resolve to lockstep iteration, and
          // commits the analytic multiply only if both representative
          // iterations ran without an interpreter fallback (control
          // independence makes the fallback pattern trip-invariant).
          if (n.bounds_uniform) {
            n.collapse_candidate = control_independent(n.body, n.var_slot);
            if (n.collapse_candidate) collect_sites(n.body, n.body_sites);
          }
          break;
        }
        case CNode::Kind::kAssign: {
          annotate_ref(n.lhs);
          n.fast = n.lhs.fast;
          for (CRef& l : n.loads) {
            annotate_ref(l);
            n.fast &= l.fast;
          }
          break;
        }
        case CNode::Kind::kSync:
          break;  // always fast under a full mask
        case CNode::Kind::kIf: {
          n.preds_uniform = true;
          for (const CPred& p : n.preds) {
            n.preds_uniform &= pred_uniform(p.expr);
          }
          annotate_body(n.then_body);
          annotate_body(n.else_body);
          break;
        }
      }
    }
  }
};

void annotate_fastpath(CompiledKernel& k) {
  // Lane-affinity fixed point over the slots: thread coordinates are
  // affine with unit coefficients, parameters and block indices with
  // zero coefficients, and a loop variable inherits the shared
  // coefficients of its bounds (or becomes irregular when the bound
  // terms disagree or reference an irregular slot).
  const size_t ns = static_cast<size_t>(k.num_slots);
  AffineTable t{std::vector<uint8_t>(ns, 1), std::vector<int64_t>(ns, 0),
                std::vector<int64_t>(ns, 0), std::vector<uint8_t>(ns, 0)};
  if (k.thread_x_slot >= 0) {
    const size_t s = static_cast<size_t>(k.thread_x_slot);
    t.tx[s] = 1;
    t.defined[s] = 1;
  }
  if (k.thread_y_slot >= 0) {
    const size_t s = static_cast<size_t>(k.thread_y_slot);
    t.ty[s] = 1;
    t.defined[s] = 1;
  }

  // A sequential loop reusing a thread/block slot as its variable would
  // invalidate the decomposition below; no front-end produces that, but
  // guard by leaving the kernel entirely on the interpreter.
  bool collision = false;
  std::vector<const std::vector<CNode>*> stack = {&k.body};
  while (!stack.empty()) {
    const std::vector<CNode>* body = stack.back();
    stack.pop_back();
    for (const CNode& n : *body) {
      if (n.kind == CNode::Kind::kLoop) {
        if (n.var_slot == k.thread_x_slot || n.var_slot == k.thread_y_slot ||
            n.var_slot == k.block_x_slot || n.var_slot == k.block_y_slot) {
          collision = true;
        }
        stack.push_back(&n.body);
      } else if (n.kind == CNode::Kind::kIf) {
        stack.push_back(&n.then_body);
        stack.push_back(&n.else_body);
      }
    }
  }
  if (collision) {
    k.slot_affine = std::move(t.affine);
    k.slot_tx = std::move(t.tx);
    k.slot_ty = std::move(t.ty);
    return;  // every node keeps fast=false -> full interpreter fallback
  }

  bool changed = true;
  while (changed) {
    changed = false;
    affinity_walk(k.body, t, changed);
  }

  Annotator a{k, t};
  a.annotate_body(k.body);
  k.slot_affine = std::move(t.affine);
  k.slot_tx = std::move(t.tx);
  k.slot_ty = std::move(t.ty);
}

}  // namespace

int64_t CompiledKernel::signature(int64_t by, int64_t bx) const {
  std::vector<int64_t> slots(static_cast<size_t>(num_slots), 0);
  if (block_y_slot >= 0) slots[static_cast<size_t>(block_y_slot)] = by;
  if (block_x_slot >= 0) slots[static_cast<size_t>(block_x_slot)] = bx;
  // Fold the precision into the seed: an f32 and an f64 kernel with
  // identical loop structure must not alias (they lower to different
  // arithmetic — the exec cache keys off this signature).
  uint64_t hash = 1469598103 ^ (static_cast<uint64_t>(precision) + 1) *
                                   0x9E3779B97F4A7C15ull;
  signature_walk(body, slots.data(), hash);
  return static_cast<int64_t>(hash);
}

StatusOr<CompiledKernel> compile_kernel(
    const ir::Program& program, const ir::Kernel& kernel,
    const ir::Env& int_params,
    const std::map<std::string, bool>& bool_params) {
  CompiledKernel out;
  out.name = kernel.name;
  out.precision = program.precision;
  OA_ASSIGN_OR_RETURN(out.launch, ir::launch_config(kernel, int_params));

  CompileState st;
  st.program = &program;
  st.params = &int_params;
  st.bools = &bool_params;
  st.out = &out;

  // Array table: globals then kernel locals.
  Status array_error = Status::ok();
  auto add_array = [&](const ir::ArrayDecl& d) {
    CArray a;
    a.name = d.name;
    a.space = d.space;
    a.rows = d.num_rows(int_params);
    a.cols = d.num_cols(int_params);
    a.ld = d.leading_dim(int_params);
    a.elements = a.ld * a.cols;
    if (a.rows <= 0 || a.cols <= 0 ||
        a.elements > (int64_t{1} << 34)) {
      if (array_error.is_ok()) {
        array_error = internal_error(
            "array '" + d.name + "' has degenerate shape " +
            std::to_string(a.rows) + "x" + std::to_string(a.cols));
      }
    }
    st.array_ids.emplace(d.name, static_cast<int>(out.arrays.size()));
    out.arrays.push_back(a);
  };
  for (const auto& d : program.globals) add_array(d);
  for (const auto& d : kernel.local_arrays) {
    add_array(d);
    if (d.space == ir::MemSpace::kShared) {
      out.shared_bytes +=
          d.num_elements(int_params) * elem_bytes(program.precision);
    } else if (d.space == ir::MemSpace::kRegister) {
      // One 4-byte register per element word: f64 doubles the register
      // footprint, which halves occupancy / forces earlier spills.
      out.regs_per_thread +=
          d.num_elements(int_params) * elem_words(program.precision);
    }
  }

  OA_RETURN_IF_ERROR(array_error);

  // Descend through the mapped loops to the executed region.
  const std::vector<ir::NodePtr>* region = &kernel.body;
  while (region->size() == 1 && (*region)[0]->is_loop() &&
         (*region)[0]->map != ir::LoopMap::kNone) {
    const ir::Node& loop = *(*region)[0];
    const int slot = st.slot_for(loop.var);
    switch (loop.map) {
      case ir::LoopMap::kBlockY:
      case ir::LoopMap::kBlockYSerial:
        out.block_y_slot = slot;
        break;
      case ir::LoopMap::kBlockX:
        out.block_x_slot = slot;
        break;
      case ir::LoopMap::kThreadY:
        out.thread_y_slot = slot;
        break;
      case ir::LoopMap::kThreadX:
        out.thread_x_slot = slot;
        break;
      case ir::LoopMap::kNone:
        break;
    }
    region = &loop.body;
  }
  // A mapped loop below unmapped structure is unsupported.
  bool bad_nesting = false;
  ir::walk_const(*region, [&](const ir::Node& n) {
    if (n.is_loop() && n.map != ir::LoopMap::kNone) bad_nesting = true;
    return true;
  });
  if (bad_nesting) {
    return internal_error("mapped loop below sequential structure in '" +
                          kernel.name + "'");
  }

  OA_ASSIGN_OR_RETURN(out.body, compile_body(*region, st));
  annotate_fastpath(out);
  return out;
}

}  // namespace oa::gpusim
