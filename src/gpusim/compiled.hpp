// Kernel "compilation" for the simulator: the IR is lowered once per
// (kernel, parameter binding) into a slot-indexed form so the hot
// interpreter loop never touches strings or maps. Integer parameters
// and runtime booleans are resolved to constants here; multi-versioned
// branches (padding_triangular's blank_zero) are selected at compile
// time, exactly as a driver would pick the kernel version to launch.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "ir/kernel.hpp"
#include "support/status.hpp"

namespace oa::gpusim {

/// Compiled affine expression: constant + sum(coeff * slot).
struct CExpr {
  int64_t constant = 0;
  std::vector<std::pair<int, int64_t>> terms;  // (slot, coeff)

  int64_t eval(const int64_t* slots) const {
    int64_t v = constant;
    for (const auto& [slot, c] : terms) v += c * slots[slot];
    return v;
  }
  bool is_constant() const { return terms.empty(); }
};

struct CBound {
  std::vector<CExpr> terms;
  int64_t eval_min(const int64_t* slots) const {
    int64_t v = terms[0].eval(slots);
    for (size_t i = 1; i < terms.size(); ++i) {
      v = std::min(v, terms[i].eval(slots));
    }
    return v;
  }
  int64_t eval_max(const int64_t* slots) const {
    int64_t v = terms[0].eval(slots);
    for (size_t i = 1; i < terms.size(); ++i) {
      v = std::max(v, terms[i].eval(slots));
    }
    return v;
  }
};

struct CArray {
  std::string name;
  ir::MemSpace space = ir::MemSpace::kGlobal;
  int64_t rows = 0, cols = 0, ld = 0;  // resolved with parameters
  int64_t elements = 0;                // ld * cols
  bool spilled = false;  // register array demoted to local memory
};

struct CRef {
  int array = -1;           // index into CompiledKernel::arrays
  int site = -1;            // static reference site id (load-reuse cache)
  CExpr row, col;
};

/// Compiled value expression (functional evaluation).
struct CVal {
  enum class Kind { kConst, kRef, kNeg, kAdd, kSub, kMul, kDiv };
  Kind kind = Kind::kConst;
  float constant = 0.0f;
  CRef ref;
  std::unique_ptr<CVal> a, b;
};

struct CPred {
  CExpr expr;
  ir::Pred::Op op = ir::Pred::Op::kGe;
  bool eval(const int64_t* slots) const {
    const int64_t v = expr.eval(slots);
    switch (op) {
      case ir::Pred::Op::kEq: return v == 0;
      case ir::Pred::Op::kGe: return v >= 0;
      case ir::Pred::Op::kLt: return v < 0;
    }
    return false;
  }
};

struct CNode {
  enum class Kind { kLoop, kAssign, kSync, kIf };
  Kind kind = Kind::kLoop;

  // kLoop
  int var_slot = -1;
  CBound lb, ub;
  int64_t step = 1;
  int unroll = 1;
  std::vector<CNode> body;

  // kAssign
  CRef lhs;
  ir::AssignOp op = ir::AssignOp::kAssign;
  std::unique_ptr<CVal> rhs;
  std::vector<CRef> loads;   // global/shared/register loads in the rhs
  bool rmw_load = false;     // += / -= / /= also reads lhs
  int arith_instructions = 0;  // issue cost of the arithmetic (MAD-fused)
  int flops = 0;             // arithmetic ops per executed lane

  // kIf
  std::vector<CPred> preds;
  std::vector<CNode> then_body;
  std::vector<CNode> else_body;

  CNode() = default;
  CNode(CNode&&) = default;
  CNode& operator=(CNode&&) = default;
};

struct CompiledKernel {
  std::string name;
  ir::LaunchConfig launch;
  std::vector<CArray> arrays;
  std::vector<CNode> body;     // the region inside block/thread loops
  int num_slots = 0;
  int num_sites = 0;           // static reference sites
  // Slots pre-bound by the launcher / lane setup.
  int block_y_slot = -1, block_x_slot = -1;
  int thread_y_slot = -1, thread_x_slot = -1;
  int64_t shared_bytes = 0;    // per block
  int64_t regs_per_thread = 0; // including register arrays (pre-spill)
  /// Signature loops: sequential loops whose (lb, ub) the launcher
  /// evaluates (threadIdx = 0, enclosing vars at lb) to classify block
  /// workloads.
  int64_t signature(int64_t by, int64_t bx) const;
};

/// Lower `kernel` with all integer/bool parameters resolved.
StatusOr<CompiledKernel> compile_kernel(
    const ir::Program& program, const ir::Kernel& kernel,
    const ir::Env& int_params,
    const std::map<std::string, bool>& bool_params);

}  // namespace oa::gpusim
