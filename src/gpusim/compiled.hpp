// Kernel "compilation" for the simulator: the IR is lowered once per
// (kernel, parameter binding) into a slot-indexed form so the hot
// interpreter loop never touches strings or maps. Integer parameters
// and runtime booleans are resolved to constants here; multi-versioned
// branches (padding_triangular's blank_zero) are selected at compile
// time, exactly as a driver would pick the kernel version to launch.
//
// Compilation also performs the *warp-analytic* analysis the ghost-mode
// fast path (block_sim.cpp) builds on: every slot is classified
// lane-affine (value = uniform + c_tx*tx + c_ty*ty with static
// coefficients) or lane-irregular, every reference is decomposed into
// that same lane-affine form, and loops whose per-trip counter
// contribution is provably regular are marked as collapse candidates.
// All of it is static per (kernel, params) — the fast path never has to
// make a data-dependent fallback decision.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "ir/kernel.hpp"
#include "support/status.hpp"

namespace oa::gpusim {

/// Compiled affine expression: constant + sum(coeff * slot).
struct CExpr {
  int64_t constant = 0;
  std::vector<std::pair<int, int64_t>> terms;  // (slot, coeff)

  int64_t eval(const int64_t* slots) const {
    int64_t v = constant;
    for (const auto& [slot, c] : terms) v += c * slots[slot];
    return v;
  }
  bool is_constant() const { return terms.empty(); }
  int64_t coeff_of(int slot) const {
    for (const auto& [s, c] : terms) {
      if (s == slot) return c;
    }
    return 0;
  }
  bool references(int slot) const { return coeff_of(slot) != 0; }
};

struct CBound {
  std::vector<CExpr> terms;
  int64_t eval_min(const int64_t* slots) const {
    int64_t v = terms[0].eval(slots);
    for (size_t i = 1; i < terms.size(); ++i) {
      v = std::min(v, terms[i].eval(slots));
    }
    return v;
  }
  int64_t eval_max(const int64_t* slots) const {
    int64_t v = terms[0].eval(slots);
    for (size_t i = 1; i < terms.size(); ++i) {
      v = std::max(v, terms[i].eval(slots));
    }
    return v;
  }
};

struct CArray {
  std::string name;
  ir::MemSpace space = ir::MemSpace::kGlobal;
  int64_t rows = 0, cols = 0, ld = 0;  // resolved with parameters
  int64_t elements = 0;                // ld * cols
  bool spilled = false;  // register array demoted to local memory
};

/// Lane-affine view of a compiled expression:
///   value(lane) = uniform(slots) + tx_coeff*tx(lane) + ty_coeff*ty(lane)
/// where `uniform` carries every non-thread slot evaluated at its
/// lane-invariant component, and tx/ty coefficients aggregate both the
/// direct thread-index terms and the thread components of lane-affine
/// loop variables (slot_tx/slot_ty below). `uniform_ok` says every
/// residual slot is lane-affine, i.e. the whole value is an affine
/// function of the lane's thread coordinates — the precondition for
/// closed-form coalescing analysis.
struct CLin {
  CExpr uniform;
  int64_t tx_coeff = 0, ty_coeff = 0;
  bool uniform_ok = false;
};

struct CRef {
  int array = -1;           // index into CompiledKernel::arrays
  int site = -1;            // static reference site id (load-reuse cache)
  CExpr row, col;
  // Fast-path decomposition (annotate_fastpath): row/col and the flat
  // column-major address row + col*ld as lane-affine forms.
  CLin row_lin, col_lin, addr_lin;
  bool fast = false;  // all three decompositions have uniform residuals
};

/// One postfix op of the flat value tape (functional evaluation). The
/// tape replaces the old pointer-chasing CVal expression tree: rhs
/// evaluation is a linear walk over a small array with an explicit
/// value stack.
struct COp {
  enum class Kind : uint8_t { kConst, kLoad, kNeg, kAdd, kSub, kMul, kDiv };
  Kind kind = Kind::kConst;
  double constant = 0.0;  // pre-rounded to the kernel's precision
  int load = -1;  // kLoad: index into CNode::loads
};

/// Value stack depth cap for tape evaluation (BLAS3 right-hand sides
/// are tiny; compile fails loudly if a source ever exceeds this).
inline constexpr int kMaxTapeDepth = 64;

struct CPred {
  CExpr expr;
  ir::Pred::Op op = ir::Pred::Op::kGe;
  bool eval(const int64_t* slots) const {
    const int64_t v = expr.eval(slots);
    switch (op) {
      case ir::Pred::Op::kEq: return v == 0;
      case ir::Pred::Op::kGe: return v >= 0;
      case ir::Pred::Op::kLt: return v < 0;
    }
    return false;
  }
};

struct CNode {
  enum class Kind { kLoop, kAssign, kSync, kIf };
  Kind kind = Kind::kLoop;

  // kLoop
  int var_slot = -1;
  CBound lb, ub;
  int64_t step = 1;
  int unroll = 1;
  std::vector<CNode> body;
  // Fast-path annotations (kLoop).
  int loop_id = -1;
  /// Every lb/ub term is lane-affine (and step > 0), so the executor
  /// can resolve which term binds for a whole block at runtime: when
  /// the binding lb and ub terms share aggregated thread coefficients,
  /// lanes iterate in lockstep and the loop variable is itself
  /// lane-affine with those coefficients. Bounds like min(N, affine)
  /// resolve to the affine term on interior blocks and fall back to the
  /// interpreter only on boundary blocks where the terms cross.
  bool bounds_uniform = false;
  /// Aggregated (tx, ty) coefficients of each lb/ub term, in term
  /// order (valid when bounds_uniform).
  std::vector<std::pair<int64_t, int64_t>> lb_tc, ub_tc;
  bool collapse_candidate = false;  // ghost-mode loop collapsing legal
  std::vector<int> body_sites;   // every reference site in the subtree

  // kAssign
  CRef lhs;
  ir::AssignOp op = ir::AssignOp::kAssign;
  std::vector<COp> tape;     // postfix rhs value tape
  int tape_depth = 0;        // max value-stack depth of `tape`
  std::vector<CRef> loads;   // global/shared/register loads in the rhs
  bool rmw_load = false;     // += / -= / /= also reads lhs
  int arith_instructions = 0;  // issue cost of the arithmetic (MAD-fused)
  int flops = 0;             // arithmetic ops per executed lane
  bool fast = false;         // every ref (lhs + loads) is lane-affine

  // kIf
  std::vector<CPred> preds;
  bool preds_uniform = false;  // predicate values are lane-invariant
  std::vector<CNode> then_body;
  std::vector<CNode> else_body;

  CNode() = default;
  CNode(CNode&&) = default;
  CNode& operator=(CNode&&) = default;
};

struct CompiledKernel {
  std::string name;
  /// Scalar precision (from the Program): decides bytes per element in
  /// coalescing/transaction pricing, words per register/shared slot,
  /// and the per-operation rounding of functional evaluation.
  Precision precision = Precision::kF32;
  ir::LaunchConfig launch;
  std::vector<CArray> arrays;
  std::vector<CNode> body;     // the region inside block/thread loops
  int num_slots = 0;
  int num_sites = 0;           // static reference sites
  int num_loops = 0;           // sequential loops (fast-path loop ids)
  /// Per-slot lane-affine decomposition (annotate_fastpath): when
  /// slot_affine[s], the slot's value in a lane is provably
  ///   uniform_component + slot_tx[s]*tx + slot_ty[s]*ty
  /// with the static coefficients below (thread slots are (1,0)/(0,1);
  /// parameters, block indices and uniform-bound loop variables are
  /// (0,0); tiled loop variables like `i from ty*r` carry their lower
  /// bound's coefficients — the variable is lb + trips*step, so only lb
  /// shapes its lane decomposition). The uniform component is what the
  /// fast path tracks in its uniform slot array.
  std::vector<uint8_t> slot_affine;
  std::vector<int64_t> slot_tx, slot_ty;
  // Slots pre-bound by the launcher / lane setup.
  int block_y_slot = -1, block_x_slot = -1;
  int thread_y_slot = -1, thread_x_slot = -1;
  int64_t shared_bytes = 0;    // per block
  int64_t regs_per_thread = 0; // including register arrays (pre-spill)
  /// Signature loops: sequential loops whose (lb, ub) the launcher
  /// evaluates (threadIdx = 0, enclosing vars at lb) to classify block
  /// workloads.
  int64_t signature(int64_t by, int64_t bx) const;
};

/// Lower `kernel` with all integer/bool parameters resolved.
StatusOr<CompiledKernel> compile_kernel(
    const ir::Program& program, const ir::Kernel& kernel,
    const ir::Env& int_params,
    const std::map<std::string, bool>& bool_params);

}  // namespace oa::gpusim
