// Lowering: gpusim::CompiledKernel -> LoweredKernel (driver tree +
// per-segment tapes). See tape.hpp for the execution model.

#include <algorithm>
#include <bit>
#include <map>
#include <utility>
#include <vector>

#include "exec/tape.hpp"
#include "support/hash.hpp"
#include "support/strings.hpp"

namespace oa::exec {

using gpusim::CArray;
using gpusim::CBound;
using gpusim::CExpr;
using gpusim::CNode;
using gpusim::COp;
using gpusim::CompiledKernel;
using gpusim::CPred;
using gpusim::CRef;

namespace {

bool body_has_sync(const std::vector<CNode>& body);

bool node_has_sync(const CNode& n) {
  switch (n.kind) {
    case CNode::Kind::kSync: return true;
    case CNode::Kind::kAssign: return false;
    case CNode::Kind::kLoop: return body_has_sync(n.body);
    case CNode::Kind::kIf:
      return body_has_sync(n.then_body) || body_has_sync(n.else_body);
  }
  return false;
}

bool body_has_sync(const std::vector<CNode>& body) {
  for (const CNode& n : body) {
    if (node_has_sync(n)) return true;
  }
  return false;
}

/// Builds one segment tape from a run of sync-free nodes. Locals 0/1
/// are the address scratch (row, col) — free between statements, also
/// reused for bound/predicate temporaries; loop variables and hoisted
/// upper bounds get dedicated locals (live across iterations).
class SegmentBuilder {
 public:
  explicit SegmentBuilder(const CompiledKernel& k) : k_(k) {}

  Status add(const CNode& n) { return node(n); }

  Segment finish() {
    TIns ret;
    ret.op = TIns::Op::kRet;
    seg_.code.push_back(ret);
    seg_.num_locals = num_locals_;
    seg_.max_stack = max_stack_;
    return std::move(seg_);
  }

 private:
  size_t emit(const TIns& t) {
    seg_.code.push_back(t);
    return seg_.code.size() - 1;
  }

  int alloc_local() { return num_locals_++; }

  /// local[dst] = e, resolving each slot against the in-scope
  /// segment-local loop variables (tape locals) or the lane frame.
  void affine(const CExpr& e, int dst) {
    TIns t;
    t.op = TIns::Op::kAffine;
    t.a = dst;
    t.imm = e.constant;
    t.b = static_cast<int32_t>(seg_.terms.size());
    t.c = static_cast<int32_t>(e.terms.size());
    for (const auto& [slot, coeff] : e.terms) {
      RTerm rt;
      auto it = var_local_.find(slot);
      if (it != var_local_.end()) {
        rt.src = it->second;
        rt.is_local = 1;
      } else {
        rt.src = slot;
      }
      rt.coeff = coeff;
      seg_.terms.push_back(rt);
    }
    emit(t);
  }

  /// local[dst] = bound.eval_max / eval_min (lb takes the max of its
  /// terms, ub the min — the interpreter's iteration contract).
  void bound(const CBound& b, int dst, bool take_max) {
    affine(b.terms[0], dst);
    for (size_t i = 1; i < b.terms.size(); ++i) {
      affine(b.terms[i], 0);
      TIns t;
      t.op = take_max ? TIns::Op::kMax : TIns::Op::kMin;
      t.a = dst;
      t.b = 0;
      emit(t);
    }
  }

  Status push(int& depth) {
    ++depth;
    if (depth > gpusim::kMaxTapeDepth) {
      return failed_precondition("FP expression exceeds tape depth");
    }
    max_stack_ = std::max(max_stack_, depth);
    return Status::ok();
  }

  Status assign(const CNode& n) {
    int depth = 0;
    for (const COp& op : n.tape) {
      TIns t;
      switch (op.kind) {
        case COp::Kind::kConst:
          t.op = TIns::Op::kFConst;
          t.fimm = op.constant;
          OA_RETURN_IF_ERROR(push(depth));
          break;
        case COp::Kind::kLoad: {
          const CRef& r = n.loads[static_cast<size_t>(op.load)];
          affine(r.row, 0);
          affine(r.col, 1);
          t.op = TIns::Op::kFLoad;
          t.a = r.array;
          t.b = 0;
          t.c = 1;
          OA_RETURN_IF_ERROR(push(depth));
          break;
        }
        case COp::Kind::kNeg: t.op = TIns::Op::kFNeg; break;
        case COp::Kind::kAdd: t.op = TIns::Op::kFAdd; --depth; break;
        case COp::Kind::kSub: t.op = TIns::Op::kFSub; --depth; break;
        case COp::Kind::kMul: t.op = TIns::Op::kFMul; --depth; break;
        case COp::Kind::kDiv: t.op = TIns::Op::kFDiv; --depth; break;
      }
      if (depth < 1) return internal_error("malformed rhs value tape");
      emit(t);
    }
    if (depth == 0) {
      // Empty tape evaluates to 0.0 in the interpreter.
      TIns zero;
      zero.op = TIns::Op::kFConst;
      zero.fimm = 0.0;
      OA_RETURN_IF_ERROR(push(depth));
      emit(zero);
    }
    if (depth != 1) return internal_error("unbalanced rhs value tape");
    affine(n.lhs.row, 0);
    affine(n.lhs.col, 1);
    TIns st;
    st.op = TIns::Op::kFStore;
    st.mode = static_cast<uint8_t>(n.op);
    st.a = n.lhs.array;
    st.b = 0;
    st.c = 1;
    emit(st);
    return Status::ok();
  }

  Status loop(const CNode& n) {
    if (n.step <= 0) {
      return failed_precondition("non-positive loop step");
    }
    const int lv = alloc_local();
    const int lub = alloc_local();
    bound(n.lb, lv, /*take_max=*/true);
    bound(n.ub, lub, /*take_max=*/false);
    const size_t head = seg_.code.size();
    TIns exit_t;
    exit_t.op = TIns::Op::kJumpGe;
    exit_t.a = lv;
    exit_t.b = lub;
    const size_t exit_ip = emit(exit_t);

    auto prev = var_local_.find(n.var_slot);
    const bool had = prev != var_local_.end();
    const int old = had ? prev->second : -1;
    var_local_[n.var_slot] = lv;
    for (const CNode& c : n.body) OA_RETURN_IF_ERROR(node(c));
    if (had) {
      var_local_[n.var_slot] = old;
    } else {
      var_local_.erase(n.var_slot);
    }

    TIns inc;
    inc.op = TIns::Op::kAddImm;
    inc.a = lv;
    inc.imm = n.step;
    emit(inc);
    TIns back;
    back.op = TIns::Op::kJump;
    back.a = static_cast<int32_t>(head);
    emit(back);
    seg_.code[exit_ip].c = static_cast<int32_t>(seg_.code.size());
    return Status::ok();
  }

  Status branch(const CNode& n) {
    if (n.preds.empty()) {
      // Compile-time selected version: only the then branch exists.
      for (const CNode& c : n.then_body) OA_RETURN_IF_ERROR(node(c));
      return Status::ok();
    }
    std::vector<size_t> fails;
    for (const CPred& p : n.preds) {
      affine(p.expr, 0);
      TIns t;
      t.op = TIns::Op::kPredJump;
      t.mode = static_cast<uint8_t>(p.op);
      t.a = 0;
      fails.push_back(emit(t));
    }
    for (const CNode& c : n.then_body) OA_RETURN_IF_ERROR(node(c));
    size_t else_start = seg_.code.size();
    if (!n.else_body.empty()) {
      TIns skip;
      skip.op = TIns::Op::kJump;
      const size_t skip_ip = emit(skip);
      else_start = seg_.code.size();
      for (const CNode& c : n.else_body) OA_RETURN_IF_ERROR(node(c));
      seg_.code[skip_ip].a = static_cast<int32_t>(seg_.code.size());
    }
    for (size_t ip : fails) {
      seg_.code[ip].c = static_cast<int32_t>(else_start);
    }
    return Status::ok();
  }

  Status node(const CNode& n) {
    switch (n.kind) {
      case CNode::Kind::kAssign: return assign(n);
      case CNode::Kind::kLoop: return loop(n);
      case CNode::Kind::kIf: return branch(n);
      case CNode::Kind::kSync:
        return internal_error("barrier inside a segment");
    }
    return internal_error("unknown node kind");
  }

  const CompiledKernel& k_;
  Segment seg_;
  std::map<int, int> var_local_;  // slot -> segment-local loop var
  int num_locals_ = 2;            // 0/1: address scratch
  int max_stack_ = 0;
};

class Lowerer {
 public:
  explicit Lowerer(const CompiledKernel& ck) : k_(ck) {
    uniform_.assign(static_cast<size_t>(ck.num_slots), 0);
    if (ck.block_y_slot >= 0) uniform_[ck.block_y_slot] = 1;
    if (ck.block_x_slot >= 0) uniform_[ck.block_x_slot] = 1;
  }

  StatusOr<LoweredKernel> run() {
    out_.name = k_.name;
    out_.precision = k_.precision;
    out_.launch = k_.launch;
    out_.arrays = k_.arrays;
    out_.num_slots = k_.num_slots;
    out_.block_y_slot = k_.block_y_slot;
    out_.block_x_slot = k_.block_x_slot;
    out_.thread_y_slot = k_.thread_y_slot;
    out_.thread_x_slot = k_.thread_x_slot;
    OA_RETURN_IF_ERROR(region(k_.body, out_.driver));
    for (const Segment& s : out_.segments) {
      out_.tape_ops += static_cast<int64_t>(s.code.size());
    }
    return std::move(out_);
  }

 private:
  bool expr_uniform(const CExpr& e) const {
    for (const auto& [slot, coeff] : e.terms) {
      (void)coeff;
      if (!uniform_[static_cast<size_t>(slot)]) return false;
    }
    return true;
  }
  bool bound_uniform(const CBound& b) const {
    for (const CExpr& e : b.terms) {
      if (!expr_uniform(e)) return false;
    }
    return true;
  }

  Status region(const std::vector<CNode>& body,
                std::vector<DriverNode>& dst) {
    std::vector<const CNode*> pending;
    auto flush = [&]() -> Status {
      if (pending.empty()) return Status::ok();
      SegmentBuilder sb(k_);
      for (const CNode* n : pending) OA_RETURN_IF_ERROR(sb.add(*n));
      pending.clear();
      DriverNode d;
      d.kind = DriverNode::Kind::kSegment;
      d.segment = static_cast<int>(out_.segments.size());
      out_.segments.push_back(sb.finish());
      dst.push_back(std::move(d));
      return Status::ok();
    };

    for (const CNode& n : body) {
      if (!node_has_sync(n)) {
        pending.push_back(&n);
        continue;
      }
      OA_RETURN_IF_ERROR(flush());
      switch (n.kind) {
        case CNode::Kind::kSync: {
          DriverNode d;
          d.kind = DriverNode::Kind::kSync;
          dst.push_back(std::move(d));
          break;
        }
        case CNode::Kind::kLoop: {
          // A barrier inside the loop: every lane must agree on the
          // trip sequence, exactly the hardware's convergence rule.
          if (!bound_uniform(n.lb) || !bound_uniform(n.ub)) {
            return failed_precondition(
                "barrier under a lane-divergent loop");
          }
          if (n.step <= 0) {
            return failed_precondition("non-positive loop step");
          }
          DriverNode d;
          d.kind = DriverNode::Kind::kLoop;
          d.var_slot = n.var_slot;
          d.lb = n.lb;
          d.ub = n.ub;
          d.step = n.step;
          uniform_[static_cast<size_t>(n.var_slot)] = 1;
          Status s = region(n.body, d.body);
          uniform_[static_cast<size_t>(n.var_slot)] = 0;
          OA_RETURN_IF_ERROR(s);
          dst.push_back(std::move(d));
          break;
        }
        case CNode::Kind::kIf: {
          bool uniform = true;
          for (const CPred& p : n.preds) uniform &= expr_uniform(p.expr);
          if (!uniform) {
            return failed_precondition(
                "barrier under a lane-divergent branch");
          }
          DriverNode d;
          d.kind = DriverNode::Kind::kIf;
          d.preds = n.preds;
          OA_RETURN_IF_ERROR(region(n.then_body, d.then_body));
          OA_RETURN_IF_ERROR(region(n.else_body, d.else_body));
          dst.push_back(std::move(d));
          break;
        }
        case CNode::Kind::kAssign:
          return internal_error("assign reported a barrier");
      }
    }
    return flush();
  }

  const CompiledKernel& k_;
  LoweredKernel out_;
  std::vector<uint8_t> uniform_;
};

void mix_expr(Fingerprint& fp, const CExpr& e) {
  fp.mix(e.constant).mix(static_cast<int64_t>(e.terms.size()));
  for (const auto& [slot, coeff] : e.terms) fp.mix(slot).mix(coeff);
}

void mix_bound(Fingerprint& fp, const CBound& b) {
  fp.mix(static_cast<int64_t>(b.terms.size()));
  for (const CExpr& e : b.terms) mix_expr(fp, e);
}

void mix_ref(Fingerprint& fp, const CRef& r) {
  fp.mix(r.array);
  mix_expr(fp, r.row);
  mix_expr(fp, r.col);
}

void mix_body(Fingerprint& fp, const std::vector<CNode>& body) {
  fp.mix(static_cast<int64_t>(body.size()));
  for (const CNode& n : body) {
    fp.mix(static_cast<int>(n.kind));
    switch (n.kind) {
      case CNode::Kind::kLoop:
        fp.mix(n.var_slot).mix(n.step);
        mix_bound(fp, n.lb);
        mix_bound(fp, n.ub);
        mix_body(fp, n.body);
        break;
      case CNode::Kind::kAssign:
        mix_ref(fp, n.lhs);
        fp.mix(static_cast<int>(n.op)).mix(n.rmw_load);
        fp.mix(static_cast<int64_t>(n.tape.size()));
        for (const COp& op : n.tape) {
          fp.mix(static_cast<int>(op.kind))
              .mix(std::bit_cast<int64_t>(op.constant))
              .mix(op.load);
        }
        fp.mix(static_cast<int64_t>(n.loads.size()));
        for (const CRef& r : n.loads) mix_ref(fp, r);
        break;
      case CNode::Kind::kSync:
        break;
      case CNode::Kind::kIf:
        fp.mix(static_cast<int64_t>(n.preds.size()));
        for (const CPred& p : n.preds) {
          mix_expr(fp, p.expr);
          fp.mix(static_cast<int>(p.op));
        }
        mix_body(fp, n.then_body);
        mix_body(fp, n.else_body);
        break;
    }
  }
}

}  // namespace

StatusOr<LoweredKernel> lower_kernel(const CompiledKernel& ck) {
  return Lowerer(ck).run();
}

uint64_t kernel_key(const CompiledKernel& ck) {
  Fingerprint fp;
  // Seed: the precision-folded block signatures of the grid corners
  // (ROADMAP's "keyed by CompiledKernel::signature"), then the full
  // structural walk — signatures alone collide across schedules whose
  // loop extents happen to agree.
  const int64_t gy = std::max<int64_t>(1, ck.launch.grid_y);
  const int64_t gx = std::max<int64_t>(1, ck.launch.grid_x);
  fp.mix(ck.signature(0, 0))
      .mix(ck.signature(gy - 1, 0))
      .mix(ck.signature(0, gx - 1))
      .mix(ck.signature(gy - 1, gx - 1));
  fp.mix(static_cast<int>(ck.precision)).mix(ck.name);
  fp.mix(ck.launch.grid_x)
      .mix(ck.launch.grid_y)
      .mix(ck.launch.block_x)
      .mix(ck.launch.block_y)
      .mix(ck.launch.serial_grid_y);
  fp.mix(ck.num_slots)
      .mix(ck.block_y_slot)
      .mix(ck.block_x_slot)
      .mix(ck.thread_y_slot)
      .mix(ck.thread_x_slot);
  fp.mix(static_cast<int64_t>(ck.arrays.size()));
  for (const CArray& a : ck.arrays) {
    fp.mix(a.name)
        .mix(static_cast<int>(a.space))
        .mix(a.rows)
        .mix(a.cols)
        .mix(a.ld)
        .mix(a.spilled);
  }
  mix_body(fp, ck.body);
  return fp.digest();
}

}  // namespace oa::exec
