// Native execution of compiled kernels: lowering (tape.hpp) plus a
// process-wide cache of executable kernels, each backed either by
// JIT-emitted x86-64 (jit_x86.hpp) or by the portable tape executor —
// two implementations of the same segment ABI
//     void seg(double* const* arrays, const int64_t* slots)
// selected at runtime. execute_program() mirrors
// engine::execute_program but computes results natively instead of
// through the lockstep interpreter.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "blas3/matrix.hpp"
#include "blas3/routine.hpp"
#include "exec/code_buffer.hpp"
#include "exec/tape.hpp"
#include "gpusim/block_sim.hpp"
#include "gpusim/device.hpp"
#include "ir/kernel.hpp"

namespace oa::exec {

struct ExecOptions {
  /// Skip the JIT even when the host supports it; run every segment
  /// through the portable tape executor. Also forced by the
  /// OABLAS_NO_JIT environment variable (checked once per process).
  bool force_portable = false;
};

struct ExecStats {
  int64_t compiles = 0;          // lowerings performed (cache misses)
  int64_t cache_hits = 0;
  int64_t jit_kernels = 0;       // compiles that produced machine code
  int64_t portable_kernels = 0;  // compiles that fell back to the tape
  int64_t failed_lowerings = 0;  // kernels the backend cannot lower
  int64_t native_blocks = 0;     // thread blocks executed natively
};

/// Per-segment entry point (SysV; the portable executor matches the
/// calling convention at the C++ level).
using SegmentFn = void (*)(double* const* arrays, const int64_t* slots);

/// A lowered kernel ready to run: the driver tree plus, when the JIT
/// succeeded, one native entry point per segment.
struct ExecutedKernel {
  LoweredKernel lowered;
  uint64_t key = 0;
  bool jit = false;
  std::unique_ptr<CodeBuffer> code;   // owns the machine code (jit only)
  std::vector<const void*> entries;   // per-segment, jit only
};

/// Keyed, thread-safe cache of executable kernels. Lowering failures
/// are negatively cached (a kernel that cannot be lowered today cannot
/// be lowered on retry either — the input is content-addressed).
class ExecCache {
 public:
  /// Lower + (maybe) JIT `ck`, or return the cached result. A JIT
  /// emission failure (W^X refusal, unsupported host) degrades to the
  /// portable executor and is cached as such.
  StatusOr<std::shared_ptr<const ExecutedKernel>> get_or_compile(
      const gpusim::CompiledKernel& ck, const ExecOptions& options = {});

  ExecStats stats() const;
  void count_native_blocks(int64_t n);

 private:
  mutable std::mutex mu_;
  std::map<uint64_t, std::shared_ptr<const ExecutedKernel>> kernels_;
  std::map<uint64_t, Status> failures_;
  ExecStats stats_;
};

/// Execute every block of `ek` against bound global buffers — the
/// native analogue of Simulator::run_functional for one kernel (waves
/// of independent blocks, serialized grid-Y respected). Reports
/// out-of-bounds accesses with the interpreter's diagnostic format.
Status run_lowered(const ExecutedKernel& ek, const gpusim::DeviceModel& dev,
                   gpusim::GlobalBuffers& buffers, ExecCache* stats);

/// Native counterpart of engine::execute_program: compile + lower every
/// kernel of `program`, run all blocks natively, and read the routine's
/// output back into `b` (TRSM) or `*c`. Sizes and buffer binding match
/// the engine exactly, so results are comparable bit-for-bit.
Status execute_program(const gpusim::DeviceModel& device,
                       const ir::Program& program,
                       const blas3::Variant& variant,
                       const blas3::Matrix& a, blas3::Matrix& b,
                       blas3::Matrix* c,
                       const std::map<std::string, bool>& bool_params,
                       ExecCache& cache, const ExecOptions& options = {});

/// Fused native batched execution: each kernel is compiled and gated
/// once, every global gets one strided allocation (member m at offset
/// m * member_elems), and the whole batch's blocks run through a single
/// parallel wave — the launch layout the batch_tiled grouping prices.
/// Semantically equivalent to calling execute_program per member
/// (engine::execute_batched is the arbitration oracle); operand vectors
/// carry one matrix per member and must share one member shape.
Status execute_batched(const gpusim::DeviceModel& device,
                       const ir::Program& program,
                       const blas3::Variant& variant,
                       const std::vector<blas3::Matrix>& a,
                       std::vector<blas3::Matrix>& b,
                       std::vector<blas3::Matrix>* c,
                       const std::map<std::string, bool>& bool_params,
                       ExecCache& cache, const ExecOptions& options = {});

}  // namespace oa::exec
