#include "exec/executor.hpp"

#include <algorithm>
#include <cstdlib>
#include <mutex>

#include "blas3/source_ir.hpp"
#include "exec/jit_x86.hpp"
#include "gpusim/simulator.hpp"
#include "support/hash.hpp"
#include "support/strings.hpp"
#include "support/thread_pool.hpp"

namespace oa::exec {
namespace {

bool jit_disabled_by_env() {
  static const bool disabled = std::getenv("OABLAS_NO_JIT") != nullptr;
  return disabled;
}

// ---- Portable tape executor ---------------------------------------
//
// Reference implementation of the segment ABI; the JIT emits exactly
// this computation. f32 kernels evaluate with T = float (load narrows,
// store widens), which is bit-identical to the interpreter's
// double-op-then-round_to discipline (innocuous double rounding; see
// support/precision.hpp).

template <typename T>
void run_segment_portable(const Segment& seg, const LoweredKernel& lk,
                          double* const* arrays, const int64_t* slots,
                          int64_t* locals) {
  auto* err = reinterpret_cast<ErrorCell*>(
      const_cast<double*>(arrays[lk.arrays.size()]));
  T stack[gpusim::kMaxTapeDepth];
  int sp = 0;
  size_t ip = 0;
  const size_t n = seg.code.size();
  while (ip < n) {
    const TIns& t = seg.code[ip];
    switch (t.op) {
      case TIns::Op::kAffine: {
        int64_t v = t.imm;
        for (int32_t i = 0; i < t.c; ++i) {
          const RTerm& rt = seg.terms[static_cast<size_t>(t.b) + i];
          v += rt.coeff * (rt.is_local ? locals[rt.src] : slots[rt.src]);
        }
        locals[t.a] = v;
        break;
      }
      case TIns::Op::kMin:
        locals[t.a] = std::min(locals[t.a], locals[t.b]);
        break;
      case TIns::Op::kMax:
        locals[t.a] = std::max(locals[t.a], locals[t.b]);
        break;
      case TIns::Op::kAddImm:
        locals[t.a] += t.imm;
        break;
      case TIns::Op::kJump:
        ip = static_cast<size_t>(t.a);
        continue;
      case TIns::Op::kJumpGe:
        if (locals[t.a] >= locals[t.b]) {
          ip = static_cast<size_t>(t.c);
          continue;
        }
        break;
      case TIns::Op::kPredJump: {
        const int64_t v = locals[t.a];
        bool hold = false;
        switch (static_cast<ir::Pred::Op>(t.mode)) {
          case ir::Pred::Op::kEq: hold = v == 0; break;
          case ir::Pred::Op::kGe: hold = v >= 0; break;
          case ir::Pred::Op::kLt: hold = v < 0; break;
        }
        if (!hold) {
          ip = static_cast<size_t>(t.c);
          continue;
        }
        break;
      }
      case TIns::Op::kFConst:
        stack[sp++] = static_cast<T>(t.fimm);
        break;
      case TIns::Op::kFLoad: {
        const gpusim::CArray& arr = lk.arrays[static_cast<size_t>(t.a)];
        const int64_t r = locals[t.b], c = locals[t.c];
        if (static_cast<uint64_t>(r) >= static_cast<uint64_t>(arr.rows) ||
            static_cast<uint64_t>(c) >= static_cast<uint64_t>(arr.cols)) {
          err->failed = 1;
          err->array = t.a;
          err->row = r;
          err->col = c;
          return;
        }
        stack[sp++] = static_cast<T>(arrays[t.a][r + c * arr.ld]);
        break;
      }
      case TIns::Op::kFNeg:
        stack[sp - 1] = -stack[sp - 1];
        break;
      case TIns::Op::kFAdd:
        stack[sp - 2] = stack[sp - 2] + stack[sp - 1];
        --sp;
        break;
      case TIns::Op::kFSub:
        stack[sp - 2] = stack[sp - 2] - stack[sp - 1];
        --sp;
        break;
      case TIns::Op::kFMul:
        stack[sp - 2] = stack[sp - 2] * stack[sp - 1];
        --sp;
        break;
      case TIns::Op::kFDiv:
        stack[sp - 2] = stack[sp - 2] / stack[sp - 1];
        --sp;
        break;
      case TIns::Op::kFStore: {
        const gpusim::CArray& arr = lk.arrays[static_cast<size_t>(t.a)];
        const int64_t r = locals[t.b], c = locals[t.c];
        if (static_cast<uint64_t>(r) >= static_cast<uint64_t>(arr.rows) ||
            static_cast<uint64_t>(c) >= static_cast<uint64_t>(arr.cols)) {
          err->failed = 1;
          err->array = t.a;
          err->row = r;
          err->col = c;
          return;
        }
        double* cell = &arrays[t.a][r + c * arr.ld];
        const T value = stack[--sp];
        switch (static_cast<ir::AssignOp>(t.mode)) {
          case ir::AssignOp::kAssign:
            *cell = static_cast<double>(value);
            break;
          case ir::AssignOp::kAddAssign:
            *cell = static_cast<double>(static_cast<T>(*cell) + value);
            break;
          case ir::AssignOp::kSubAssign:
            *cell = static_cast<double>(static_cast<T>(*cell) - value);
            break;
          case ir::AssignOp::kDivAssign:
            *cell = static_cast<double>(static_cast<T>(*cell) / value);
            break;
        }
        break;
      }
      case TIns::Op::kRet:
        return;
    }
    ++ip;
  }
}

// ---- Block driver -------------------------------------------------

struct BlockCtx {
  const ExecutedKernel* ek = nullptr;
  int nlanes = 0;
  int num_slots = 0;
  std::vector<int64_t> frames;       // nlanes * num_slots, lane-major
  std::vector<double*> tab;          // arrays table + ErrorCell slot
  std::vector<std::vector<double>> local_store;  // shared + register
  std::vector<int> reg_arrays;       // indices with per-lane storage
  std::vector<double*> reg_base;     // per reg array: block-wide base
  std::vector<int64_t> locals;       // portable-executor scratch
  ErrorCell err;

  int64_t* frame(int lane) {
    return frames.data() + static_cast<size_t>(lane) * num_slots;
  }
};

Status oob_status(const LoweredKernel& lk, const ErrorCell& err) {
  const gpusim::CArray& arr = lk.arrays[static_cast<size_t>(err.array)];
  return internal_error(
      str_format("out-of-bounds access to %s: (%lld, %lld) not in %lldx%lld",
                 arr.name.c_str(), static_cast<long long>(err.row),
                 static_cast<long long>(err.col),
                 static_cast<long long>(arr.rows),
                 static_cast<long long>(arr.cols)));
}

Status run_segment_all_lanes(BlockCtx& ctx, int seg_idx) {
  const ExecutedKernel& ek = *ctx.ek;
  const LoweredKernel& lk = ek.lowered;
  const Segment& seg = lk.segments[static_cast<size_t>(seg_idx)];
  for (int lane = 0; lane < ctx.nlanes; ++lane) {
    for (size_t i = 0; i < ctx.reg_arrays.size(); ++i) {
      const int a = ctx.reg_arrays[i];
      ctx.tab[static_cast<size_t>(a)] =
          ctx.reg_base[i] +
          static_cast<size_t>(lane) *
              lk.arrays[static_cast<size_t>(a)].elements;
    }
    const int64_t* slots = ctx.frame(lane);
    if (ek.jit) {
      auto fn = reinterpret_cast<SegmentFn>(
          const_cast<void*>(ek.entries[static_cast<size_t>(seg_idx)]));
      fn(ctx.tab.data(), slots);
    } else if (lk.precision == Precision::kF64) {
      run_segment_portable<double>(seg, lk, ctx.tab.data(), slots,
                                   ctx.locals.data());
    } else {
      run_segment_portable<float>(seg, lk, ctx.tab.data(), slots,
                                  ctx.locals.data());
    }
    if (ctx.err.failed) return oob_status(lk, ctx.err);
  }
  return Status::ok();
}

Status exec_driver(BlockCtx& ctx, const std::vector<DriverNode>& nodes) {
  for (const DriverNode& n : nodes) {
    switch (n.kind) {
      case DriverNode::Kind::kSegment:
        OA_RETURN_IF_ERROR(run_segment_all_lanes(ctx, n.segment));
        break;
      case DriverNode::Kind::kSync:
        // Lane-major execution already ran every lane to this point.
        break;
      case DriverNode::Kind::kLoop: {
        // Bounds are lane-uniform (verified at lowering): evaluate on
        // lane 0's frame, broadcast the variable to every lane.
        int64_t v = n.lb.eval_max(ctx.frame(0));
        const int64_t hi = n.ub.eval_min(ctx.frame(0));
        for (; v < hi; v += n.step) {
          for (int lane = 0; lane < ctx.nlanes; ++lane) {
            ctx.frame(lane)[n.var_slot] = v;
          }
          OA_RETURN_IF_ERROR(exec_driver(ctx, n.body));
        }
        break;
      }
      case DriverNode::Kind::kIf: {
        bool hold = true;
        for (const gpusim::CPred& p : n.preds) {
          if (!p.eval(ctx.frame(0))) {
            hold = false;
            break;
          }
        }
        OA_RETURN_IF_ERROR(
            exec_driver(ctx, hold ? n.then_body : n.else_body));
        break;
      }
    }
  }
  return Status::ok();
}

Status run_block(const ExecutedKernel& ek,
                 const std::vector<double*>& global_ptrs, int64_t by,
                 int64_t bx) {
  const LoweredKernel& lk = ek.lowered;
  BlockCtx ctx;
  ctx.ek = &ek;
  ctx.nlanes = static_cast<int>(lk.launch.threads_per_block());
  ctx.num_slots = lk.num_slots;
  ctx.frames.assign(
      static_cast<size_t>(ctx.nlanes) * ctx.num_slots, 0);
  for (int lane = 0; lane < ctx.nlanes; ++lane) {
    int64_t* f = ctx.frame(lane);
    if (lk.block_y_slot >= 0) f[lk.block_y_slot] = by;
    if (lk.block_x_slot >= 0) f[lk.block_x_slot] = bx;
    if (lk.thread_x_slot >= 0) f[lk.thread_x_slot] = lane % lk.launch.block_x;
    if (lk.thread_y_slot >= 0) f[lk.thread_y_slot] = lane / lk.launch.block_x;
  }

  ctx.tab.assign(lk.arrays.size() + 1, nullptr);
  for (size_t i = 0; i < lk.arrays.size(); ++i) {
    const gpusim::CArray& a = lk.arrays[i];
    switch (a.space) {
      case ir::MemSpace::kGlobal:
        ctx.tab[i] = global_ptrs[i];
        break;
      case ir::MemSpace::kShared: {
        ctx.local_store.emplace_back(static_cast<size_t>(a.elements), 0.0);
        ctx.tab[i] = ctx.local_store.back().data();
        break;
      }
      case ir::MemSpace::kRegister: {
        // Private per-lane storage, one block-wide slab (spilled or
        // not — spilling only changes the simulator's pricing).
        ctx.local_store.emplace_back(
            static_cast<size_t>(a.elements) * ctx.nlanes, 0.0);
        ctx.reg_arrays.push_back(static_cast<int>(i));
        ctx.reg_base.push_back(ctx.local_store.back().data());
        break;
      }
    }
  }
  ctx.tab[lk.arrays.size()] = reinterpret_cast<double*>(&ctx.err);

  int max_locals = 1;
  for (const Segment& s : lk.segments) {
    max_locals = std::max(max_locals, s.num_locals);
  }
  ctx.locals.assign(static_cast<size_t>(max_locals), 0);

  return exec_driver(ctx, lk.driver);
}

}  // namespace

// ---- ExecCache ----------------------------------------------------

StatusOr<std::shared_ptr<const ExecutedKernel>> ExecCache::get_or_compile(
    const gpusim::CompiledKernel& ck, const ExecOptions& options) {
  const bool use_jit = jit_supported() && !options.force_portable &&
                       !jit_disabled_by_env();
  // force_portable results must not alias JIT'd ones for the same
  // kernel (the fallback test depends on actually getting the tape).
  Fingerprint fp;
  fp.mix(kernel_key(ck)).mix(use_jit);
  const uint64_t key = fp.digest();

  {
    std::lock_guard<std::mutex> lock(mu_);
    auto hit = kernels_.find(key);
    if (hit != kernels_.end()) {
      ++stats_.cache_hits;
      return hit->second;
    }
    auto miss = failures_.find(key);
    if (miss != failures_.end()) {
      ++stats_.cache_hits;
      return miss->second;
    }
  }

  auto lowered = lower_kernel(ck);
  if (!lowered.is_ok()) {
    std::lock_guard<std::mutex> lock(mu_);
    ++stats_.compiles;
    ++stats_.failed_lowerings;
    failures_.emplace(key, lowered.status());
    return lowered.status();
  }

  auto ek = std::make_shared<ExecutedKernel>();
  ek->lowered = std::move(*lowered);
  ek->key = key;
  if (use_jit) {
    auto jr = jit_compile(ek->lowered);
    if (jr.is_ok()) {
      ek->jit = true;
      ek->code = std::move(jr->buffer);
      ek->entries = std::move(jr->entries);
    }
    // Emission failure (W^X refusal, xmm pressure) is not an error:
    // the portable executor runs the same tape.
  }

  std::lock_guard<std::mutex> lock(mu_);
  ++stats_.compiles;
  if (ek->jit) {
    ++stats_.jit_kernels;
  } else {
    ++stats_.portable_kernels;
  }
  auto [it, inserted] = kernels_.emplace(key, std::move(ek));
  (void)inserted;  // lost race: keep the first copy
  return it->second;
}

ExecStats ExecCache::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

void ExecCache::count_native_blocks(int64_t n) {
  std::lock_guard<std::mutex> lock(mu_);
  stats_.native_blocks += n;
}

// ---- Program-level execution --------------------------------------

Status run_lowered(const ExecutedKernel& ek, const gpusim::DeviceModel& dev,
                   gpusim::GlobalBuffers& buffers, ExecCache* stats) {
  (void)dev;
  const LoweredKernel& lk = ek.lowered;
  std::vector<double*> global_ptrs(lk.arrays.size(), nullptr);
  for (size_t i = 0; i < lk.arrays.size(); ++i) {
    const gpusim::CArray& a = lk.arrays[i];
    if (a.space != ir::MemSpace::kGlobal) continue;
    std::vector<double>* buf = buffers.find(a.name);
    if (buf == nullptr ||
        buf->size() < static_cast<size_t>(a.elements)) {
      return internal_error("global buffer '" + a.name +
                            "' missing or undersized");
    }
    global_ptrs[i] = buf->data();
  }

  const bool serial = lk.launch.serial_grid_y;
  const int64_t num_waves = serial ? lk.launch.grid_y : 1;
  const int64_t blocks_per_wave =
      serial ? lk.launch.grid_x : lk.launch.num_blocks();
  for (int64_t wave = 0; wave < num_waves; ++wave) {
    std::mutex mu;
    Status first_error = Status::ok();
    ThreadPool::shared().parallel_for(
        static_cast<size_t>(blocks_per_wave), [&](size_t idx) {
          const int64_t by =
              serial ? wave : static_cast<int64_t>(idx) / lk.launch.grid_x;
          const int64_t bx =
              serial ? static_cast<int64_t>(idx)
                     : static_cast<int64_t>(idx) % lk.launch.grid_x;
          Status s = run_block(ek, global_ptrs, by, bx);
          if (!s.is_ok()) {
            std::lock_guard<std::mutex> lock(mu);
            if (first_error.is_ok()) first_error = s;
          }
        });
    OA_RETURN_IF_ERROR(first_error);
  }
  if (stats != nullptr) {
    stats->count_native_blocks(num_waves * blocks_per_wave);
  }
  return Status::ok();
}

namespace {

/// Size bindings — identical to engine::execute_program so results are
/// comparable bit-for-bit.
ir::Env routine_size_env(const blas3::Variant& variant,
                         const blas3::Matrix& a, const blas3::Matrix& b,
                         const blas3::Matrix* c) {
  const int64_t m = b.rows();
  const int64_t n = b.cols();
  if (variant.family == blas3::Family::kGemm) {
    // GEMM operand shapes depend on the transpose flags: A is MxK (or
    // KxM), B is KxN (or NxK). Derive M/N from the flagged axes — B's
    // rows are the reduction length for trans_b=N, not M.
    const int64_t k =
        variant.trans_a == blas3::Trans::kN ? a.cols() : a.rows();
    return {{"M", variant.trans_a == blas3::Trans::kN ? a.rows() : a.cols()},
            {"N", variant.trans_b == blas3::Trans::kN ? b.cols() : b.rows()},
            {"K", k}};
  }
  if (variant.family == blas3::Family::kSyrk) {
    const int64_t k =
        variant.trans == blas3::Trans::kN ? a.cols() : a.rows();
    return {{"M", c != nullptr ? c->rows() : m}, {"N", n}, {"K", k}};
  }
  return {{"M", m}, {"N", n}};
}

/// Launchability gating mirrors Simulator::run_kernel: the native
/// backend must refuse exactly what the simulator refuses.
StatusOr<gpusim::CompiledKernel> compile_gated(
    const gpusim::DeviceModel& device, const ir::Program& program,
    const ir::Kernel& kernel, const ir::Env& int_params,
    const std::map<std::string, bool>& bool_params) {
  OA_ASSIGN_OR_RETURN(
      gpusim::CompiledKernel ck,
      gpusim::compile_kernel(program, kernel, int_params, bool_params));
  const int64_t threads = ck.launch.threads_per_block();
  if (threads > device.max_threads_per_block) {
    return failed_precondition(
        str_format("%lld threads/block exceeds the device limit",
                   static_cast<long long>(threads)));
  }
  const int64_t reg_budget = std::min<int64_t>(
      124, device.registers_per_sm / std::max<int64_t>(1, threads));
  if (device.base_regs_per_thread + ck.regs_per_thread > reg_budget) {
    for (gpusim::CArray& arr : ck.arrays) {
      if (arr.space == ir::MemSpace::kRegister) arr.spilled = true;
    }
    ck.regs_per_thread = 0;
  }
  const int64_t regs =
      (device.base_regs_per_thread + ck.regs_per_thread) * threads;
  int64_t occ = device.max_blocks_per_sm;
  if (regs > 0) occ = std::min(occ, device.registers_per_sm / regs);
  if (ck.shared_bytes > 0) {
    occ = std::min(occ, device.shared_mem_per_sm / ck.shared_bytes);
  }
  occ = std::min<int64_t>(occ, device.max_threads_per_sm / threads);
  if (occ <= 0) {
    return failed_precondition("kernel '" + kernel.name +
                               "' does not fit on an SM");
  }
  return ck;
}

}  // namespace

Status execute_program(const gpusim::DeviceModel& device,
                       const ir::Program& program,
                       const blas3::Variant& variant,
                       const blas3::Matrix& a, blas3::Matrix& b,
                       blas3::Matrix* c,
                       const std::map<std::string, bool>& bool_params,
                       ExecCache& cache, const ExecOptions& options) {
  const ir::Env int_params = routine_size_env(variant, a, b, c);
  const char* out_name = blas3::output_array(variant);
  blas3::Matrix& out = variant.family == blas3::Family::kTrsm ? b : *c;
  // Reject a retargeted output shape before compiling or running
  // anything — read_back would refuse the result anyway.
  OA_RETURN_IF_ERROR(
      gpusim::check_read_back_shape(program, int_params, out_name, out));
  gpusim::GlobalBuffers buffers = gpusim::make_buffers(
      program, int_params, {{"A", &a}, {"B", &b}, {"C", c}});

  for (const ir::Kernel& kernel : program.kernels) {
    OA_ASSIGN_OR_RETURN(
        gpusim::CompiledKernel ck,
        compile_gated(device, program, kernel, int_params, bool_params));
    OA_ASSIGN_OR_RETURN(std::shared_ptr<const ExecutedKernel> ek,
                        cache.get_or_compile(ck, options));
    OA_RETURN_IF_ERROR(run_lowered(*ek, device, buffers, &cache));
  }

  return gpusim::read_back(buffers, program, int_params, out_name, out);
}

Status execute_batched(const gpusim::DeviceModel& device,
                       const ir::Program& program,
                       const blas3::Variant& variant,
                       const std::vector<blas3::Matrix>& a,
                       std::vector<blas3::Matrix>& b,
                       std::vector<blas3::Matrix>* c,
                       const std::map<std::string, bool>& bool_params,
                       ExecCache& cache, const ExecOptions& options) {
  if (a.size() != b.size() ||
      (c != nullptr && c->size() != a.size())) {
    return invalid_argument("batched operands disagree on batch count");
  }
  if (a.empty()) {
    return invalid_argument("batched execution needs at least one member");
  }
  const int64_t count = static_cast<int64_t>(a.size());
  for (size_t i = 1; i < a.size(); ++i) {
    if (a[i].rows() != a[0].rows() || a[i].cols() != a[0].cols() ||
        b[i].rows() != b[0].rows() || b[i].cols() != b[0].cols() ||
        (c != nullptr && ((*c)[i].rows() != (*c)[0].rows() ||
                          (*c)[i].cols() != (*c)[0].cols()))) {
      return invalid_argument(
          "strided-batched members must share one member shape");
    }
  }

  const ir::Env int_params = routine_size_env(
      variant, a[0], b[0], c != nullptr ? &(*c)[0] : nullptr);
  OA_RETURN_IF_ERROR(gpusim::check_read_back_shape(
      program, int_params, blas3::output_array(variant),
      variant.family == blas3::Family::kTrsm ? b[0] : (*c)[0]));

  // One strided allocation per global: member m lives at offset
  // m * member_elems. Member data is staged through make_buffers so the
  // leading-dimension copy rules match the single-member path exactly.
  gpusim::GlobalBuffers big;
  std::map<std::string, int64_t, std::less<>> member_elems;
  for (const ir::ArrayDecl& d : program.globals) {
    const int64_t elems = d.num_elements(int_params);
    member_elems[d.name] = elems;
    big.data.emplace(
        d.name,
        std::vector<double>(static_cast<size_t>(elems * count), 0.0));
  }
  for (int64_t m = 0; m < count; ++m) {
    gpusim::GlobalBuffers one = gpusim::make_buffers(
        program, int_params,
        {{"A", &a[static_cast<size_t>(m)]},
         {"B", &b[static_cast<size_t>(m)]},
         {"C", c != nullptr ? &(*c)[static_cast<size_t>(m)] : nullptr}});
    for (auto& [name, buf] : one.data) {
      std::copy(buf.begin(), buf.end(),
                big.data[name].begin() +
                    static_cast<size_t>(m * member_elems[name]));
    }
  }

  // Compile/gate each kernel once; the whole batch runs through that
  // one lowered kernel with per-member buffer offsets — the fused
  // launch the batch_tiled grouping prices.
  for (const ir::Kernel& kernel : program.kernels) {
    OA_ASSIGN_OR_RETURN(
        gpusim::CompiledKernel ck,
        compile_gated(device, program, kernel, int_params, bool_params));
    OA_ASSIGN_OR_RETURN(std::shared_ptr<const ExecutedKernel> ek,
                        cache.get_or_compile(ck, options));

    const LoweredKernel& lk = ek->lowered;
    std::vector<double*> base_ptrs(lk.arrays.size(), nullptr);
    std::vector<int64_t> strides(lk.arrays.size(), 0);
    for (size_t i = 0; i < lk.arrays.size(); ++i) {
      const gpusim::CArray& arr = lk.arrays[i];
      if (arr.space != ir::MemSpace::kGlobal) continue;
      std::vector<double>* buf = big.find(arr.name);
      const int64_t elems = member_elems[arr.name];
      if (buf == nullptr ||
          buf->size() < static_cast<size_t>(elems * count) ||
          elems < arr.elements) {
        return internal_error("global buffer '" + arr.name +
                              "' missing or undersized");
      }
      base_ptrs[i] = buf->data();
      strides[i] = elems;
    }

    const bool serial = lk.launch.serial_grid_y;
    const int64_t num_waves = serial ? lk.launch.grid_y : 1;
    const int64_t blocks_per_wave =
        serial ? lk.launch.grid_x : lk.launch.num_blocks();
    for (int64_t wave = 0; wave < num_waves; ++wave) {
      std::mutex mu;
      Status first_error = Status::ok();
      ThreadPool::shared().parallel_for(
          static_cast<size_t>(count * blocks_per_wave), [&](size_t idx) {
            const int64_t member =
                static_cast<int64_t>(idx) / blocks_per_wave;
            const int64_t bidx =
                static_cast<int64_t>(idx) % blocks_per_wave;
            const int64_t by =
                serial ? wave : bidx / lk.launch.grid_x;
            const int64_t bx =
                serial ? bidx : bidx % lk.launch.grid_x;
            std::vector<double*> ptrs(base_ptrs.size(), nullptr);
            for (size_t i = 0; i < base_ptrs.size(); ++i) {
              if (base_ptrs[i] != nullptr) {
                ptrs[i] = base_ptrs[i] + member * strides[i];
              }
            }
            Status s = run_block(*ek, ptrs, by, bx);
            if (!s.is_ok()) {
              std::lock_guard<std::mutex> lock(mu);
              if (first_error.is_ok()) first_error = s;
            }
          });
      OA_RETURN_IF_ERROR(first_error);
    }
    cache.count_native_blocks(count * num_waves * blocks_per_wave);
  }

  // Read every member's output back through the single-member reader by
  // aliasing its slice of the strided buffer.
  const char* out_name = blas3::output_array(variant);
  std::vector<blas3::Matrix>& out =
      variant.family == blas3::Family::kTrsm ? b : *c;
  const int64_t out_elems = member_elems[out_name];
  std::vector<double>* out_buf = big.find(out_name);
  for (int64_t m = 0; m < count; ++m) {
    gpusim::GlobalBuffers view;
    view.data.emplace(
        out_name,
        std::vector<double>(
            out_buf->begin() + static_cast<size_t>(m * out_elems),
            out_buf->begin() + static_cast<size_t>((m + 1) * out_elems)));
    OA_RETURN_IF_ERROR(gpusim::read_back(view, program, int_params,
                                         out_name,
                                         out[static_cast<size_t>(m)]));
  }
  return Status::ok();
}

}  // namespace oa::exec
