#include "exec/jit_x86.hpp"

#include <bit>
#include <cstring>
#include <utility>

#include "support/strings.hpp"

namespace oa::exec {

bool jit_supported() {
#if defined(__x86_64__) || defined(_M_X64)
  return true;
#else
  return false;
#endif
}

namespace {

// General-purpose register numbers (SysV). rdi/rsi hold the two
// arguments for the whole function (no calls, never clobbered); rax,
// rcx, rdx, r9 are scratch; r8 carries the array id for the shared
// bounds-failure stub.
constexpr int kRax = 0, kRcx = 1, kRdx = 2, kRsp = 4, kRsi = 6, kRdi = 7;
constexpr int kR8 = 8, kR9 = 9;

// FP evaluation stack lives in xmm0..xmm12; xmm15 is scratch.
constexpr int kMaxXmmStack = 13;
constexpr int kXmmScratch = 15;

// Condition codes (Jcc = 0F 80+cc, CMOVcc = 0F 40+cc).
constexpr uint8_t kCcAe = 0x3;   // unsigned >=
constexpr uint8_t kCcNe = 0x5;
constexpr uint8_t kCcS = 0x8;    // sign (v < 0)
constexpr uint8_t kCcNs = 0x9;   // no sign (v >= 0)
constexpr uint8_t kCcL = 0xC;    // signed <
constexpr uint8_t kCcGe = 0xD;   // signed >=
constexpr uint8_t kCcG = 0xF;    // signed >

bool fits_i32(int64_t v) {
  return v >= INT32_MIN && v <= INT32_MAX;
}

class Asm {
 public:
  std::vector<uint8_t> b;

  size_t size() const { return b.size(); }
  void u8(uint8_t x) { b.push_back(x); }
  void u32(uint32_t x) {
    for (int i = 0; i < 4; ++i) u8(static_cast<uint8_t>(x >> (8 * i)));
  }
  void u64(uint64_t x) {
    for (int i = 0; i < 8; ++i) u8(static_cast<uint8_t>(x >> (8 * i)));
  }
  void patch32(size_t at, uint32_t x) {
    for (int i = 0; i < 4; ++i) {
      b[at + static_cast<size_t>(i)] = static_cast<uint8_t>(x >> (8 * i));
    }
  }

  void rex(bool w, bool r, bool x, bool base) {
    u8(static_cast<uint8_t>(0x40 | (w ? 8 : 0) | (r ? 4 : 0) |
                            (x ? 2 : 0) | (base ? 1 : 0)));
  }
  void modrm_rr(int reg, int rm) {
    u8(static_cast<uint8_t>(0xC0 | ((reg & 7) << 3) | (rm & 7)));
  }
  /// modrm for [base + disp], disp8 when it fits (local-slot offsets
  /// nearly always do — this is most of the code-size win over a naive
  /// encoder); rsp-based addressing takes the SIB detour. Bases used:
  /// rsp, rsi, rdi, rdx, r9 — none alias the rbp/r13 no-base encodings
  /// under mod=01/10.
  void modrm_mem_disp32(int reg, int base, int32_t disp) {
    const bool small = disp >= -128 && disp <= 127;
    u8(static_cast<uint8_t>((small ? 0x40 : 0x80) | ((reg & 7) << 3) |
                            ((base & 7) == 4 ? 4 : (base & 7))));
    if ((base & 7) == 4) u8(0x24);
    if (small) {
      u8(static_cast<uint8_t>(disp));
    } else {
      u32(static_cast<uint32_t>(disp));
    }
  }

  // --- integer forms ------------------------------------------------
  void mov_r_imm64(int reg, uint64_t imm) {
    rex(true, false, false, reg >= 8);
    u8(static_cast<uint8_t>(0xB8 + (reg & 7)));
    u64(imm);
  }
  void mov_r32_imm32(int reg, uint32_t imm) {
    if (reg >= 8) u8(0x41);
    u8(static_cast<uint8_t>(0xB8 + (reg & 7)));
    u32(imm);
  }
  /// mov reg64, sign-extended imm32 — 7 bytes vs movabs's 10; use for
  /// any value that fits.
  void mov_r_simm32(int reg, int32_t imm) {
    rex(true, false, false, reg >= 8);
    u8(0xC7);
    u8(static_cast<uint8_t>(0xC0 | (reg & 7)));
    u32(static_cast<uint32_t>(imm));
  }
  /// mov reg64, imm — picks the shortest encoding.
  void mov_r_imm(int reg, int64_t imm) {
    if (fits_i32(imm)) {
      mov_r_simm32(reg, static_cast<int32_t>(imm));
    } else {
      mov_r_imm64(reg, static_cast<uint64_t>(imm));
    }
  }
  void mov_r_m(int reg, int base, int32_t disp) {
    rex(true, reg >= 8, false, base >= 8);
    u8(0x8B);
    modrm_mem_disp32(reg, base, disp);
  }
  void mov_m_r(int base, int32_t disp, int reg) {
    rex(true, reg >= 8, false, base >= 8);
    u8(0x89);
    modrm_mem_disp32(reg, base, disp);
  }
  void mov_m_imm32(int base, int32_t disp, int32_t imm) {
    rex(true, false, false, base >= 8);
    u8(0xC7);
    modrm_mem_disp32(0, base, disp);
    u32(static_cast<uint32_t>(imm));
  }
  void add_rr(int dst, int src) {
    rex(true, src >= 8, false, dst >= 8);
    u8(0x01);
    modrm_rr(src, dst);
  }
  void imul_rr(int dst, int src) {
    rex(true, dst >= 8, false, src >= 8);
    u8(0x0F);
    u8(0xAF);
    modrm_rr(dst, src);
  }
  /// imul dst64, src64, imm32 — one instruction where movabs+imul took
  /// two (coefficients and leading dimensions fit in 32 bits).
  void imul_rr_imm32(int dst, int src, int32_t imm) {
    rex(true, dst >= 8, false, src >= 8);
    u8(0x69);
    modrm_rr(dst, src);
    u32(static_cast<uint32_t>(imm));
  }
  void add_m_imm32(int base, int32_t disp, int32_t imm) {
    rex(true, false, false, base >= 8);
    u8(0x81);
    modrm_mem_disp32(0, base, disp);
    u32(static_cast<uint32_t>(imm));
  }
  /// cmp rm64, reg64  (flags of rm - reg)
  void cmp_rm_r(int rm, int reg) {
    rex(true, reg >= 8, false, rm >= 8);
    u8(0x39);
    modrm_rr(reg, rm);
  }
  /// cmp reg64, [base + disp32]
  void cmp_r_m(int reg, int base, int32_t disp) {
    rex(true, reg >= 8, false, base >= 8);
    u8(0x3B);
    modrm_mem_disp32(reg, base, disp);
  }
  void cmp_r_imm32(int reg, int32_t imm) {
    rex(true, false, false, reg >= 8);
    u8(0x81);
    u8(static_cast<uint8_t>(0xF8 | (reg & 7)));
    u32(static_cast<uint32_t>(imm));
  }
  void cmp_r_imm8(int reg, int8_t imm) {
    rex(true, false, false, reg >= 8);
    u8(0x83);
    u8(static_cast<uint8_t>(0xF8 | (reg & 7)));
    u8(static_cast<uint8_t>(imm));
  }
  void cmov(uint8_t cc, int dst, int src) {
    rex(true, dst >= 8, false, src >= 8);
    u8(0x0F);
    u8(static_cast<uint8_t>(0x40 + cc));
    modrm_rr(dst, src);
  }
  /// lea dst, [base + index*8]
  void lea_scaled8(int dst, int base, int index) {
    rex(true, dst >= 8, index >= 8, base >= 8);
    u8(0x8D);
    u8(static_cast<uint8_t>(0x04 | ((dst & 7) << 3)));
    u8(static_cast<uint8_t>(0xC0 | ((index & 7) << 3) | (base & 7)));
  }

  // --- jumps (rel32, patched later) ---------------------------------
  size_t jmp() {
    u8(0xE9);
    const size_t at = size();
    u32(0);
    return at;
  }
  size_t jcc(uint8_t cc) {
    u8(0x0F);
    u8(static_cast<uint8_t>(0x80 + cc));
    const size_t at = size();
    u32(0);
    return at;
  }

  // --- SSE ----------------------------------------------------------
  void sse_rr(uint8_t prefix, uint8_t opc, int xreg, int xrm) {
    if (prefix != 0) u8(prefix);
    if (xreg >= 8 || xrm >= 8) {
      rex(false, xreg >= 8, false, xrm >= 8);
    }
    u8(0x0F);
    u8(opc);
    modrm_rr(xreg, xrm);
  }
  /// SSE op with a [base] memory operand (no displacement; bases used
  /// are rdx/r9, never rsp/rbp-encoded).
  void sse_rm(uint8_t prefix, uint8_t opc, int xreg, int base) {
    if (prefix != 0) u8(prefix);
    if (xreg >= 8 || base >= 8) {
      rex(false, xreg >= 8, false, base >= 8);
    }
    u8(0x0F);
    u8(opc);
    u8(static_cast<uint8_t>(((xreg & 7) << 3) | (base & 7)));
  }
  /// movq xmm, r64
  void movq_x_r(int xreg, int reg) {
    u8(0x66);
    rex(true, xreg >= 8, false, reg >= 8);
    u8(0x0F);
    u8(0x6E);
    modrm_rr(xreg, reg);
  }
};

/// Per-segment emitter.
class SegmentEmitter {
 public:
  SegmentEmitter(const LoweredKernel& lk, const Segment& seg, Asm& a)
      : lk_(lk), seg_(seg), a_(a), f64_(lk.precision == Precision::kF64) {}

  Status emit() {
    if (seg_.max_stack > kMaxXmmStack) {
      return failed_precondition(
          "FP stack exceeds the JIT xmm register file");
    }
    frame_ = (seg_.num_locals * 8 + 15) & ~15;
    // Prologue. rdi/rsi stay live as the argument registers.
    a_.u8(0x55);                       // push rbp
    a_.u8(0x48); a_.u8(0x89); a_.u8(0xE5);  // mov rbp, rsp
    a_.u8(0x48); a_.u8(0x81); a_.u8(0xEC);  // sub rsp, imm32
    a_.u32(static_cast<uint32_t>(frame_));

    ins_off_.resize(seg_.code.size() + 1);
    for (size_t ip = 0; ip < seg_.code.size(); ++ip) {
      ins_off_[ip] = a_.size();
      OA_RETURN_IF_ERROR(ins(seg_.code[ip]));
    }
    ins_off_[seg_.code.size()] = a_.size();

    // Shared bounds-failure stub: r8 = array id, rax = row, rcx = col.
    fail_off_ = a_.size();
    a_.mov_r_m(kR9, kRdi,
               static_cast<int32_t>(8 * lk_.arrays.size()));
    a_.mov_m_imm32(kR9, 0, 1);        // err.failed = 1
    a_.mov_m_r(kR9, 8, kR8);          // err.array
    a_.mov_m_r(kR9, 16, kRax);        // err.row
    a_.mov_m_r(kR9, 24, kRcx);        // err.col
    epilogue();

    // Patch tape-index jumps and fail-stub jumps.
    for (const auto& [at, target_ip] : fixups_) {
      const size_t target = ins_off_[target_ip];
      a_.patch32(at, static_cast<uint32_t>(target - (at + 4)));
    }
    for (size_t at : fail_fixups_) {
      a_.patch32(at, static_cast<uint32_t>(fail_off_ - (at + 4)));
    }
    return Status::ok();
  }

 private:
  int32_t local_disp(int32_t local) const { return 8 * local; }

  void epilogue() {
    a_.u8(0xC9);  // leave
    a_.u8(0xC3);  // ret
  }

  /// rax = imm + sum(terms): the kAffine core.
  void affine(const TIns& t) {
    a_.mov_r_imm(kRax, t.imm);
    for (int32_t i = 0; i < t.c; ++i) {
      const RTerm& rt = seg_.terms[static_cast<size_t>(t.b + i)];
      if (rt.is_local != 0) {
        a_.mov_r_m(kRcx, kRsp, local_disp(rt.src));
      } else {
        a_.mov_r_m(kRcx, kRsi, 8 * rt.src);
      }
      if (rt.coeff != 1) {
        if (fits_i32(rt.coeff)) {
          a_.imul_rr_imm32(kRcx, kRcx, static_cast<int32_t>(rt.coeff));
        } else {
          a_.mov_r_imm64(kRdx, static_cast<uint64_t>(rt.coeff));
          a_.imul_rr(kRcx, kRdx);
        }
      }
      a_.add_rr(kRax, kRcx);
    }
    a_.mov_m_r(kRsp, local_disp(t.a), kRax);
  }

  /// Bounds-checked element address of arrays[t.a][local[b], local[c]]
  /// into rdx (byte address). Leaves row in rax, col in rcx for the
  /// failure stub.
  void address(const TIns& t) {
    const gpusim::CArray& arr = lk_.arrays[static_cast<size_t>(t.a)];
    a_.mov_r32_imm32(kR8, static_cast<uint32_t>(t.a));
    a_.mov_r_m(kRax, kRsp, local_disp(t.b));  // row
    a_.mov_r_m(kRcx, kRsp, local_disp(t.c));  // col
    if (fits_i32(arr.rows)) {
      a_.cmp_r_imm32(kRax, static_cast<int32_t>(arr.rows));
    } else {
      a_.mov_r_imm64(kRdx, static_cast<uint64_t>(arr.rows));
      a_.cmp_rm_r(kRax, kRdx);
    }
    fail_fixups_.push_back(a_.jcc(kCcAe));    // (unsigned)row >= rows
    if (fits_i32(arr.cols)) {
      a_.cmp_r_imm32(kRcx, static_cast<int32_t>(arr.cols));
    } else {
      a_.mov_r_imm64(kRdx, static_cast<uint64_t>(arr.cols));
      a_.cmp_rm_r(kRcx, kRdx);
    }
    fail_fixups_.push_back(a_.jcc(kCcAe));
    if (fits_i32(arr.ld)) {
      a_.imul_rr_imm32(kRdx, kRcx, static_cast<int32_t>(arr.ld));
    } else {
      a_.mov_r_imm64(kRdx, static_cast<uint64_t>(arr.ld));
      a_.imul_rr(kRdx, kRcx);
    }
    a_.add_rr(kRdx, kRax);                    // element index
    a_.mov_r_m(kR9, kRdi, 8 * t.a);           // base pointer
    a_.lea_scaled8(kRdx, kR9, kRdx);          // byte address
  }

  Status ins(const TIns& t) {
    switch (t.op) {
      case TIns::Op::kAffine:
        affine(t);
        break;
      case TIns::Op::kMin:
      case TIns::Op::kMax:
        a_.mov_r_m(kRax, kRsp, local_disp(t.a));
        a_.mov_r_m(kRcx, kRsp, local_disp(t.b));
        a_.cmp_rm_r(kRcx, kRax);
        a_.cmov(t.op == TIns::Op::kMin ? kCcL : kCcG, kRax, kRcx);
        a_.mov_m_r(kRsp, local_disp(t.a), kRax);
        break;
      case TIns::Op::kAddImm:
        if (fits_i32(t.imm)) {
          a_.add_m_imm32(kRsp, local_disp(t.a),
                         static_cast<int32_t>(t.imm));
        } else {
          a_.mov_r_m(kRax, kRsp, local_disp(t.a));
          a_.mov_r_imm64(kRcx, static_cast<uint64_t>(t.imm));
          a_.add_rr(kRax, kRcx);
          a_.mov_m_r(kRsp, local_disp(t.a), kRax);
        }
        break;
      case TIns::Op::kJump:
        fixups_.emplace_back(a_.jmp(), static_cast<size_t>(t.a));
        break;
      case TIns::Op::kJumpGe:
        a_.mov_r_m(kRax, kRsp, local_disp(t.a));
        a_.cmp_r_m(kRax, kRsp, local_disp(t.b));
        fixups_.emplace_back(a_.jcc(kCcGe), static_cast<size_t>(t.c));
        break;
      case TIns::Op::kPredJump: {
        a_.mov_r_m(kRax, kRsp, local_disp(t.a));
        a_.cmp_r_imm8(kRax, 0);
        uint8_t cc = kCcNe;  // kEq false
        switch (static_cast<ir::Pred::Op>(t.mode)) {
          case ir::Pred::Op::kEq: cc = kCcNe; break;
          case ir::Pred::Op::kGe: cc = kCcS; break;   // false: v < 0
          case ir::Pred::Op::kLt: cc = kCcNs; break;  // false: v >= 0
        }
        fixups_.emplace_back(a_.jcc(cc), static_cast<size_t>(t.c));
        break;
      }
      case TIns::Op::kFConst:
        a_.mov_r_imm64(kRax, std::bit_cast<uint64_t>(t.fimm));
        a_.movq_x_r(stack_, kRax);
        if (!f64_) {
          // Pre-rounded constant: the narrowing conversion is exact.
          a_.sse_rr(0xF2, 0x5A, stack_, stack_);  // cvtsd2ss
        }
        ++stack_;
        break;
      case TIns::Op::kFLoad:
        address(t);
        if (f64_) {
          a_.sse_rm(0xF2, 0x10, stack_, kRdx);  // movsd x, [rdx]
        } else {
          a_.sse_rm(0xF2, 0x5A, stack_, kRdx);  // cvtsd2ss x, m64
        }
        ++stack_;
        break;
      case TIns::Op::kFNeg:
        // Flip the sign bit of the top of stack via xmm15.
        if (f64_) {
          a_.mov_r_imm64(kRax, 0x8000000000000000ull);
          a_.movq_x_r(kXmmScratch, kRax);
          a_.sse_rr(0x66, 0x57, stack_ - 1, kXmmScratch);  // xorpd
        } else {
          a_.mov_r_imm64(kRax, 0x80000000ull);
          a_.movq_x_r(kXmmScratch, kRax);
          a_.sse_rr(0, 0x57, stack_ - 1, kXmmScratch);     // xorps
        }
        break;
      case TIns::Op::kFAdd:
      case TIns::Op::kFSub:
      case TIns::Op::kFMul:
      case TIns::Op::kFDiv: {
        uint8_t opc = 0x58;
        if (t.op == TIns::Op::kFSub) opc = 0x5C;
        if (t.op == TIns::Op::kFMul) opc = 0x59;
        if (t.op == TIns::Op::kFDiv) opc = 0x5E;
        a_.sse_rr(f64_ ? 0xF2 : 0xF3, opc, stack_ - 2, stack_ - 1);
        --stack_;
        break;
      }
      case TIns::Op::kFStore: {
        address(t);
        --stack_;  // pop the value
        const auto mode = static_cast<ir::AssignOp>(t.mode);
        if (mode == ir::AssignOp::kAssign) {
          if (f64_) {
            a_.sse_rm(0xF2, 0x11, stack_, kRdx);  // movsd [rdx], x
          } else {
            a_.sse_rr(0xF3, 0x5A, kXmmScratch, stack_);  // cvtss2sd
            a_.sse_rm(0xF2, 0x11, kXmmScratch, kRdx);
          }
          break;
        }
        uint8_t opc = 0x58;  // kAddAssign
        if (mode == ir::AssignOp::kSubAssign) opc = 0x5C;
        if (mode == ir::AssignOp::kDivAssign) opc = 0x5E;
        if (f64_) {
          a_.sse_rm(0xF2, 0x10, kXmmScratch, kRdx);   // movsd x15, [cell]
          a_.sse_rr(0xF2, opc, kXmmScratch, stack_);  // x15 op= value
          a_.sse_rm(0xF2, 0x11, kXmmScratch, kRdx);
        } else {
          a_.sse_rm(0xF2, 0x5A, kXmmScratch, kRdx);   // cvtsd2ss
          a_.sse_rr(0xF3, opc, kXmmScratch, stack_);
          a_.sse_rr(0xF3, 0x5A, kXmmScratch, kXmmScratch);  // cvtss2sd
          a_.sse_rm(0xF2, 0x11, kXmmScratch, kRdx);
        }
        break;
      }
      case TIns::Op::kRet:
        epilogue();
        break;
    }
    return Status::ok();
  }

  const LoweredKernel& lk_;
  const Segment& seg_;
  Asm& a_;
  const bool f64_;
  int32_t frame_ = 0;
  int stack_ = 0;  // static FP-stack depth == xmm index of next push
  std::vector<size_t> ins_off_;
  std::vector<std::pair<size_t, size_t>> fixups_;  // (rel32 at, tape ip)
  std::vector<size_t> fail_fixups_;
  size_t fail_off_ = 0;
};

}  // namespace

StatusOr<JitResult> jit_compile(const LoweredKernel& lk) {
  if (!jit_supported()) {
    return failed_precondition("JIT backend requires x86-64");
  }
  Asm a;
  std::vector<size_t> entries;
  entries.reserve(lk.segments.size());
  for (const Segment& seg : lk.segments) {
    entries.push_back(a.size());
    SegmentEmitter em(lk, seg, a);
    OA_RETURN_IF_ERROR(em.emit());
  }
  if (a.b.empty()) {
    // A kernel of pure barriers: nothing to run natively, but nothing
    // to fail either — map a single ret so entries stay callable.
    a.u8(0xC3);
  }
  OA_ASSIGN_OR_RETURN(std::unique_ptr<CodeBuffer> buf,
                      CodeBuffer::make(a.b));
  JitResult r;
  r.entries.reserve(entries.size());
  for (size_t off : entries) r.entries.push_back(buf->entry(off));
  r.buffer = std::move(buf);
  return std::move(r);
}

}  // namespace oa::exec
