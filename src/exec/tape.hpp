// Native execution backend — the lowered form of a CompiledKernel.
//
// The gpusim interpreter executes the slot-indexed IR lane-lockstep
// with an active mask. For *native* execution we split a kernel at its
// barriers into sync-free *segments* and run each segment to
// completion per lane (lane-major). Between barriers no lane observes
// another lane's effects except through the shared/global arrays it is
// synchronizing about, so per-lane whole-segment execution computes
// exactly what the lockstep interpreter computes for every race-free
// kernel — and the per-lane operation order (the thing FP rounding
// depends on) is identical, statement by statement.
//
// The lowered artifact has two layers:
//   * a host-side *driver tree* (DriverNode): segments, barriers, and
//     the loops/branches that *contain* barriers. Driver control flow
//     must be lane-uniform (bounds/predicates referencing only block
//     indices and enclosing driver loop variables) — the same
//     precondition __syncthreads() imposes on real hardware. Kernels
//     that violate it fail lowering and stay on the interpreter.
//   * per-segment flat *tapes* (TIns): straight-line register-allocated
//     instructions with explicit jumps for the sync-free loops and
//     branches inside a segment. A tape runs per lane against the
//     SysV-ABI frame `(double** arrays, const int64_t* slots)` — the
//     same program either interpreted (portable executor) or as
//     JIT-emitted x86-64 (jit_x86.hpp).
//
// Integer scratch lives in tape *locals* (never written back to the
// slot frame, which stays const per the ABI); floating-point values
// live on a bounded evaluation stack (gpusim::kMaxTapeDepth), which
// the JIT maps onto xmm registers.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "gpusim/compiled.hpp"
#include "support/status.hpp"

namespace oa::exec {

/// Resolved affine term: coeff * (frame slot | tape local).
struct RTerm {
  int32_t src = 0;
  int32_t is_local = 0;
  int64_t coeff = 0;
};

/// One tape instruction. Integer operands name tape locals (`a`, `b`,
/// `c` per op comment); jumps hold absolute instruction indices.
struct TIns {
  enum class Op : uint8_t {
    kAffine,    // local[a] = imm + sum(terms[b .. b+c))
    kMin,       // local[a] = min(local[a], local[b])
    kMax,       // local[a] = max(local[a], local[b])
    kAddImm,    // local[a] += imm
    kJump,      // ip = a
    kJumpGe,    // if (local[a] >= local[b]) ip = c     (loop exit)
    kPredJump,  // if (!(local[a] <mode> 0)) ip = c     (failed guard)
    kFConst,    // push fimm
    kFLoad,     // push arrays[a][local[b] + local[c]*ld]   (checked)
    kFNeg,      // top = -top
    kFAdd,      // binop: pop rhs, combine into new top
    kFSub,
    kFMul,
    kFDiv,
    kFStore,    // pop value -> arrays[a][local[b], local[c]] via <mode>
    kRet,       // end of segment
  };
  Op op = Op::kRet;
  /// kFStore: ir::AssignOp; kPredJump: ir::Pred::Op (both as uint8).
  uint8_t mode = 0;
  int32_t a = 0, b = 0, c = 0;
  int64_t imm = 0;
  double fimm = 0.0;
};

/// One sync-free tape, executed whole per lane.
struct Segment {
  std::vector<TIns> code;
  /// Side table the kAffine ops index into (shared per segment).
  std::vector<RTerm> terms;
  int num_locals = 0;
  /// Static maximum FP-stack depth (<= gpusim::kMaxTapeDepth).
  int max_stack = 0;
};

/// Host-side driver tree: what the block driver executes around the
/// per-lane segments. Loop bounds / branch predicates are deep copies
/// of the compiled kernel's (CompiledKernel is move-only; the lowered
/// kernel must outlive it in the exec cache).
struct DriverNode {
  enum class Kind { kSegment, kLoop, kIf, kSync };
  Kind kind = Kind::kSegment;

  int segment = -1;  // kSegment: index into LoweredKernel::segments

  // kLoop — bounds verified lane-uniform at lowering time; the driver
  // evaluates them once per entry on lane 0's frame and writes the
  // loop variable into every lane's frame per iteration.
  int var_slot = -1;
  gpusim::CBound lb, ub;
  int64_t step = 1;
  std::vector<DriverNode> body;

  // kIf — preds empty (compile-time selected) or lane-uniform.
  std::vector<gpusim::CPred> preds;
  std::vector<DriverNode> then_body, else_body;
};

/// A CompiledKernel lowered for native execution. Owns copies of
/// everything the driver needs at run time.
struct LoweredKernel {
  std::string name;
  Precision precision = Precision::kF32;
  ir::LaunchConfig launch;
  std::vector<gpusim::CArray> arrays;
  int num_slots = 0;
  int block_y_slot = -1, block_x_slot = -1;
  int thread_y_slot = -1, thread_x_slot = -1;

  std::vector<Segment> segments;
  std::vector<DriverNode> driver;
  int64_t tape_ops = 0;  // total TIns across segments (artifact record)
};

/// Out-of-line error reporting within the two-pointer ABI: the arrays
/// table carries one extra entry, arrays[num_arrays], pointing at this
/// cell. A failed bounds check records the faulting access and the
/// segment returns immediately; the driver turns it into a Status
/// matching the interpreter's out-of-bounds diagnostic.
struct ErrorCell {
  int64_t failed = 0;
  int64_t array = 0;
  int64_t row = 0;
  int64_t col = 0;
};

/// Lower a compiled kernel. Fails (caller falls back to the
/// interpreter) when a barrier sits under lane-divergent control flow
/// or an FP expression exceeds the evaluation-stack bound.
StatusOr<LoweredKernel> lower_kernel(const gpusim::CompiledKernel& ck);

/// Content fingerprint of a compiled kernel — the exec-cache key.
/// Seeded with the precision-folded CompiledKernel::signature() of the
/// grid's corner blocks, then mixed over the full structural body walk
/// (two schedules with identical loop extents must not alias).
uint64_t kernel_key(const gpusim::CompiledKernel& ck);

}  // namespace oa::exec
