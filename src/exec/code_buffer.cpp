#include "exec/code_buffer.hpp"

#include <cstring>
#include <memory>

#if defined(__unix__) || defined(__APPLE__)
#include <sys/mman.h>
#include <unistd.h>
#define OA_EXEC_HAVE_MMAP 1
#endif

#include "support/strings.hpp"

namespace oa::exec {

StatusOr<std::unique_ptr<CodeBuffer>> CodeBuffer::make(
    const std::vector<uint8_t>& code) {
  if (code.empty()) return invalid_argument("empty code buffer");
#if defined(OA_EXEC_HAVE_MMAP)
  const size_t page = static_cast<size_t>(sysconf(_SC_PAGESIZE));
  const size_t size = (code.size() + page - 1) / page * page;
  void* base = mmap(nullptr, size, PROT_READ | PROT_WRITE,
                    MAP_PRIVATE | MAP_ANONYMOUS, -1, 0);
  if (base == MAP_FAILED) {
    return internal_error("mmap failed for JIT code buffer");
  }
  std::memcpy(base, code.data(), code.size());
  if (mprotect(base, size, PROT_READ | PROT_EXEC) != 0) {
    munmap(base, size);
    return internal_error("mprotect(PROT_EXEC) failed (W^X denied)");
  }
  return std::unique_ptr<CodeBuffer>(new CodeBuffer(base, size));
#else
  return failed_precondition("no executable-memory support on this OS");
#endif
}

CodeBuffer::~CodeBuffer() {
#if defined(OA_EXEC_HAVE_MMAP)
  if (base_ != nullptr) munmap(base_, size_);
#endif
}

}  // namespace oa::exec
