// Executable code buffer with a W^X lifecycle: the buffer is mmap'd
// read-write, machine code is copied in, then the mapping is flipped
// to read-execute before any entry point is handed out. The two
// protections are never held simultaneously.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

#include "support/status.hpp"

namespace oa::exec {

class CodeBuffer {
 public:
  /// Map `code` executable. Fails (Status, no crash) when mmap or
  /// mprotect is unavailable — the caller selects the portable
  /// executor instead. Never fails for an empty `code` vacuously:
  /// empty input is rejected.
  static StatusOr<std::unique_ptr<CodeBuffer>> make(
      const std::vector<uint8_t>& code);

  ~CodeBuffer();
  CodeBuffer(const CodeBuffer&) = delete;
  CodeBuffer& operator=(const CodeBuffer&) = delete;

  /// Entry point at a byte offset into the mapped code.
  const void* entry(size_t offset) const {
    return static_cast<const uint8_t*>(base_) + offset;
  }
  size_t size() const { return size_; }

 private:
  CodeBuffer(void* base, size_t size) : base_(base), size_(size) {}
  void* base_ = nullptr;
  size_t size_ = 0;
};

}  // namespace oa::exec
