#include "exec/annotate.hpp"

#include "blas3/routine.hpp"
#include "engine/evaluation_engine.hpp"
#include "exec/tape.hpp"
#include "gpusim/compiled.hpp"

namespace oa::exec {

Status annotate_artifact(libgen::Artifact& artifact,
                         const gpusim::DeviceModel& device) {
  (void)device;
  for (libgen::ArtifactEntry& entry : artifact.entries) {
    entry.exec.clear();
    const blas3::Variant* v = blas3::find_variant(entry.variant);
    if (v == nullptr) continue;
    auto eval = libgen::reconstruct(entry, *v, {entry.candidate()});
    if (!eval.is_ok()) continue;
    const ir::Program& program = eval->program;
    const ir::Env int_params = engine::size_env(*v, entry.tuned_size);
    const std::map<std::string, bool> bool_params =
        engine::bools_for(eval->candidate);
    std::vector<libgen::ExecRecord> records;
    bool complete = true;
    for (const ir::Kernel& kernel : program.kernels) {
      auto ck = gpusim::compile_kernel(program, kernel, int_params,
                                       bool_params);
      if (!ck.is_ok()) {
        complete = false;
        break;
      }
      auto lowered = lower_kernel(*ck);
      if (!lowered.is_ok()) {
        complete = false;
        break;
      }
      libgen::ExecRecord r;
      r.kernel = kernel.name;
      r.key = kernel_key(*ck);
      r.tape_ops = lowered->tape_ops;
      r.segments = static_cast<int64_t>(lowered->segments.size());
      records.push_back(std::move(r));
    }
    // All-or-nothing: a half-annotated entry would misrepresent what
    // the serving process caches.
    if (complete) entry.exec = std::move(records);
  }
  return Status::ok();
}

}  // namespace oa::exec
