// Artifact v3 sidecar: record, per library entry, what the native
// execution backend lowers its kernels to — the exec-cache keys a
// serving process will hit and the lowered tape sizes. Purely
// informational for the artifact reader (machine code is never
// persisted), but it makes the cache contents of a deployment
// auditable from the shipped .oalib file alone.
#pragma once

#include "gpusim/device.hpp"
#include "libgen/artifact.hpp"
#include "support/status.hpp"

namespace oa::exec {

/// Fill `artifact.entries[*].exec` by reconstructing each entry's
/// program (libgen::reconstruct against the entry's own candidate),
/// compiling every kernel at the entry's tuned_size, and lowering it.
/// Entries whose program cannot be reconstructed or lowered get an
/// empty sidecar — that is a property of the entry, not an error.
Status annotate_artifact(libgen::Artifact& artifact,
                         const gpusim::DeviceModel& device);

}  // namespace oa::exec
