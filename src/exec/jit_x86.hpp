// x86-64 machine-code emission for segment tapes (tape.hpp).
//
// Each segment becomes one SysV function
//     void seg(double* const* arrays, const int64_t* slots)
// with tape locals in the stack frame, the FP evaluation stack mapped
// onto xmm0..xmm12 (xmm15 is scratch), and bounds-checked loads/stores
// that record the faulting access in the trailing ErrorCell and return
// early. f32 kernels load via cvtsd2ss, compute in single precision
// (addss/subss/mulss/divss), and store via cvtss2sd — bit-identical to
// the interpreter's double-op-then-round discipline (innocuous double
// rounding; see support/precision.hpp). f64 kernels use the sd forms.
#pragma once

#include <memory>
#include <vector>

#include "exec/code_buffer.hpp"
#include "exec/tape.hpp"

namespace oa::exec {

/// True when this build can emit and run native code at all
/// (x86-64 only). Runtime mmap/mprotect failures are reported by
/// jit_compile() instead.
bool jit_supported();

struct JitResult {
  std::unique_ptr<CodeBuffer> buffer;
  /// Entry point per segment, same order as LoweredKernel::segments.
  std::vector<const void*> entries;
};

/// Emit every segment of `lk` into one executable buffer. Fails
/// cleanly (caller falls back to the portable executor) on unsupported
/// hosts, W^X/mmap refusal, or an FP stack too deep for the xmm file.
StatusOr<JitResult> jit_compile(const LoweredKernel& lk);

}  // namespace oa::exec
