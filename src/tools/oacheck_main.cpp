// oacheck — deterministic fuzzing & differential-verification driver
// for the generate -> serialize -> serve pipeline (src/verify).
//
//   oacheck --seed 42 --cases 500            seeded fuzz campaign
//   oacheck --seed 42 --check mutation       one check kind only
//   oacheck --repro 42:137                   re-run one case, verbose
//   oacheck --corpus tests/corpus            run checked-in reproducers
//   oacheck --seed 1 --self-check            run twice, compare reports
//
// Exit status: 0 all cases pass/reject cleanly, 1 at least one FAIL,
// 2 usage error. Everything is a pure function of the flags — no wall
// clock, no environment — so two identical invocations print identical
// bytes (docs/VERIFICATION.md).
#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "epod/script.hpp"
#include "support/strings.hpp"
#include "verify/corpus.hpp"
#include "verify/harness.hpp"

namespace {

using namespace oa;

bool parse_int64(const char* s, int64_t* out) {
  if (s == nullptr || *s == '\0') return false;
  char* end = nullptr;
  errno = 0;
  const long long v = std::strtoll(s, &end, 10);
  if (errno != 0 || end == s || *end != '\0') return false;
  *out = v;
  return true;
}

bool parse_uint64(const char* s, uint64_t* out) {
  if (s == nullptr || *s == '\0') return false;
  char* end = nullptr;
  errno = 0;
  const unsigned long long v = std::strtoull(s, &end, 10);
  if (errno != 0 || end == s || *end != '\0') return false;
  *out = v;
  return true;
}

int usage() {
  std::printf(
      "usage: oacheck [options]\n\n"
      "options:\n"
      "  --seed N              fuzz seed (default 1)\n"
      "  --cases N             fuzzed case count (default 500)\n"
      "  --device geforce9800|gtx285|fermi\n"
      "                        simulated device (default gtx285)\n"
      "  --check LIST          comma list of checks to run:\n"
      "                        differential,roundtrip,mutation,fastpath,"
      "native\n"
      "                        (default: all four)\n"
      "  --max-size N          cap fuzzed problem extents (default 96)\n"
      "  --interp-differential run differential cases interpreter-only\n"
      "                        (default executes native-first; this is\n"
      "                        the slow A/B lane CI times against)\n"
      "  --corpus DIR          also run every *.case reproducer in DIR\n"
      "  --write-corpus DIR    persist failing fuzzed cases to DIR as\n"
      "                        *.case reproducer files\n"
      "  --repro SEED:INDEX    regenerate exactly one fuzzed case and\n"
      "                        run it verbosely\n"
      "  --print-cases         print the full deterministic case list\n"
      "                        (default prints failures only)\n"
      "  --self-check          run the campaign twice and verify the\n"
      "                        reports are byte-identical\n");
  return 2;
}

int run_repro(const verify::HarnessOptions& options,
              const gpusim::DeviceModel& device, const std::string& spec) {
  const size_t colon = spec.find(':');
  uint64_t seed = 0;
  uint64_t index = 0;
  if (colon == std::string::npos ||
      !parse_uint64(spec.substr(0, colon).c_str(), &seed) ||
      !parse_uint64(spec.substr(colon + 1).c_str(), &index)) {
    std::fprintf(stderr, "oacheck: --repro wants SEED:INDEX, got '%s'\n",
                 spec.c_str());
    return 2;
  }
  verify::HarnessOptions repro = options;
  repro.seed = seed;
  verify::Harness harness(device, repro);
  const verify::FuzzCase c = harness.fuzzer().make_case(index);
  std::printf("case %s\n", c.to_string().c_str());
  std::printf("--- script ---\n%s", epod::to_text(c.script).c_str());
  std::printf("--- reproducer file ---\n%s",
              verify::case_to_text(c).c_str());
  const verify::CaseResult r = harness.run_case(c);
  std::printf("--- verdict ---\n%s | %s\n", verify::verdict_name(r.verdict),
              r.detail.c_str());
  return r.verdict == verify::Verdict::kFail ? 1 : 0;
}

int run_campaign(const verify::HarnessOptions& options,
                 const gpusim::DeviceModel& device, bool print_cases,
                 bool self_check) {
  verify::Harness harness(device, options);
  verify::Report report = harness.run();
  if (self_check) {
    verify::Harness second(device, options);
    const verify::Report again = second.run();
    if (report.case_list() != again.case_list() ||
        report.summary() != again.summary()) {
      std::fprintf(stderr,
                   "oacheck: SELF-CHECK FAILED — two same-seed runs "
                   "produced different reports\n");
      return 1;
    }
    std::printf("self-check: two seed=%llu runs byte-identical\n",
                static_cast<unsigned long long>(options.seed));
  }
  if (print_cases) {
    std::fputs(report.case_list().c_str(), stdout);
  } else {
    for (const verify::CaseResult& r : report.results) {
      if (r.verdict != verify::Verdict::kFail) continue;
      std::printf("%s %s -> FAIL | %s\n", r.source.c_str(),
                  r.fuzz.to_string().c_str(), r.detail.c_str());
      if (r.source == "fuzz") {
        std::printf("  repro: oacheck --repro %s\n", r.fuzz.id().c_str());
      }
    }
  }
  std::printf("%s\n", report.summary().c_str());
  return report.ok() ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  verify::HarnessOptions options;
  std::string device_name = "gtx285";
  std::string repro_spec;
  bool print_cases = false;
  bool self_check = false;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : nullptr;
    };
    if (arg == "--seed") {
      if (!parse_uint64(next(), &options.seed)) return usage();
    } else if (arg == "--cases") {
      if (!parse_uint64(next(), &options.cases)) return usage();
    } else if (arg == "--device") {
      const char* v = next();
      if (v == nullptr) return usage();
      device_name = v;
    } else if (arg == "--check") {
      const char* v = next();
      if (v == nullptr) return usage();
      options.fuzzer.differential = false;
      options.fuzzer.roundtrip = false;
      options.fuzzer.mutation = false;
      options.fuzzer.fastpath = false;
      options.fuzzer.native = false;
      for (const std::string& piece : split(v, ',', /*skip_empty=*/true)) {
        verify::CheckKind kind;
        if (!verify::parse_check_kind(piece, &kind)) {
          std::fprintf(stderr, "oacheck: unknown check '%s'\n",
                       piece.c_str());
          return usage();
        }
        switch (kind) {
          case verify::CheckKind::kDifferential:
            options.fuzzer.differential = true;
            break;
          case verify::CheckKind::kRoundTrip:
            options.fuzzer.roundtrip = true;
            break;
          case verify::CheckKind::kMutation:
            options.fuzzer.mutation = true;
            break;
          case verify::CheckKind::kFastPath:
            options.fuzzer.fastpath = true;
            break;
          case verify::CheckKind::kNative:
            options.fuzzer.native = true;
            break;
        }
      }
    } else if (arg == "--max-size") {
      int64_t v = 0;
      if (!parse_int64(next(), &v) || v < 1) return usage();
      options.fuzzer.max_size = v;
    } else if (arg == "--corpus") {
      const char* v = next();
      if (v == nullptr) return usage();
      options.corpus_dir = v;
    } else if (arg == "--write-corpus") {
      const char* v = next();
      if (v == nullptr) return usage();
      options.write_corpus_dir = v;
    } else if (arg == "--interp-differential") {
      options.check.differential_native_first = false;
    } else if (arg == "--repro") {
      const char* v = next();
      if (v == nullptr) return usage();
      repro_spec = v;
    } else if (arg == "--print-cases") {
      print_cases = true;
    } else if (arg == "--self-check") {
      self_check = true;
    } else if (arg == "--help" || arg == "-h") {
      usage();
      return 0;
    } else {
      std::fprintf(stderr, "oacheck: unknown flag '%s'\n", arg.c_str());
      return usage();
    }
  }

  const gpusim::DeviceModel* device = verify::device_by_name(device_name);
  if (device == nullptr) {
    std::fprintf(stderr, "oacheck: unknown device '%s'\n",
                 device_name.c_str());
    return usage();
  }
  if (!repro_spec.empty()) {
    return run_repro(options, *device, repro_spec);
  }
  return run_campaign(options, *device, print_cases, self_check);
}
