// oagen — command-line driver for the OA framework.
//
//   oagen --list                                   list routines/devices
//   oagen --routine SYMM-LL [--device gtx285]      generate + report
//   oagen --routine GEMM-TN --show-candidates      composer output only
//   oagen --routine TRMM-LL-N --script file.epod   apply a user script
//   oagen --routine SYMM-LL --adaptor file.adl     use a custom adaptor
//   oagen --routine SYMM-LL --size 4096            performance at size N
//   oagen --emit-lib lib.oalib                     generate the whole
//                                                  library artifact
//   oagen --load-lib lib.oalib [--routine NAME]    warm-start from it
//   oagen --dump-scripts                           candidate scripts
//                                                  (CI cache key)
//
// Scripts and adaptors use the syntax documented in docs/LANGUAGES.md;
// the artifact format in docs/ARTIFACT.md.
#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>

#include "blas3/source_ir.hpp"
#include "epod/script.hpp"
#include "exec/annotate.hpp"
#include "libgen/artifact.hpp"
#include "oa/oa.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "ir/printer.hpp"
#include "runtime/library_runtime.hpp"
#include "support/log.hpp"
#include "support/rng.hpp"
#include "tuner/tuner.hpp"

namespace {

using namespace oa;

/// Strict base-10 parse: the whole string must be a number (no empty
/// strings, no trailing garbage, no overflow) — `--size 12garbage` is a
/// usage error, not a silent 12 (and `--size` with nothing after it is
/// not a silent 0, which std::atoll("") used to produce).
bool parse_int64(const char* s, int64_t* out) {
  if (s == nullptr || *s == '\0') return false;
  char* end = nullptr;
  errno = 0;
  const long long v = std::strtoll(s, &end, 10);
  if (errno != 0 || end == s || *end != '\0') return false;
  *out = v;
  return true;
}

const gpusim::DeviceModel* device_by_name(const std::string& name) {
  if (name == "geforce9800" || name == "9800") {
    return &gpusim::geforce_9800();
  }
  if (name == "gtx285" || name == "285") return &gpusim::gtx285();
  if (name == "fermi" || name == "c2050") return &gpusim::fermi_c2050();
  return nullptr;
}

StatusOr<std::string> read_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) return not_found("cannot open '" + path + "'");
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

int usage() {
  std::printf(
      "usage: oagen --routine NAME [options]\n"
      "       oagen --list\n\n"
      "options:\n"
      "  --device geforce9800|gtx285|fermi   target GPU (default gtx285)\n"
      "  --size N                            measure GFLOPS at N "
      "(default 1024)\n"
      "  --tuning-size N                     search problem size "
      "(default 512)\n"
      "  --precision s|d|all                 restrict to single (s/f32) "
      "or double (d/f64) routines; library\n"
      "                                      modes default to all\n"
      "  --variants A,B,...                  generate a comma-separated "
      "list of routines (underscore\n"
      "                                      spellings like "
      "GEMM_BATCHED_NN accepted)\n"
      "  --quick                             smoke-test search budget "
      "(small tuning/verify sizes)\n"
      "  --show-candidates                   print the composer output "
      "and exit\n"
      "  --show-kernel                       print the generated kernel "
      "IR\n"
      "  --script FILE                       apply an EPOD script "
      "instead of searching\n"
      "  --adaptor FILE                      compose a custom ADL "
      "adaptor (bound to A)\n"
      "  --exhaustive                        exhaustive parameter sweep\n"
      "  --jobs N                            parallel evaluation lanes "
      "(default: all cores)\n"
      "  --no-cache                          disable evaluation "
      "memoization\n"
      "  --no-fastpath                       pure interpreter simulation "
      "(counters are identical; slower)\n"
      "  --engine-stats                      print search-cost breakdown "
      "after generation\n"
      "  --emit-lib FILE                     generate (all routines "
      "unless --routine) and save the library artifact\n"
      "  --load-lib FILE                     load a library artifact; "
      "matching entries are served without re-tuning\n"
      "  --no-warm-start                     ignore artifact/session "
      "warm starts (always search)\n"
      "  --warm-start                        when an artifact entry is "
      "stale, seed the search from its parameters\n"
      "  --dump-scripts                      print the candidate EPOD "
      "scripts (text serialization) and exit\n"
      "  --metrics-out FILE                  export the process-wide "
      "metrics registry as JSON on exit\n"
      "  --trace-out FILE                    export collected spans as "
      "Chrome trace JSON on exit\n"
      "  --serve-slo-us N                    self-check serve(): p99 "
      "latency SLO in us (0 = no shedding)\n"
      "  --serve-max-depth N                 self-check serve(): hard "
      "in-flight bound (0 = unbounded)\n"
      "  --serve-max-batch N                 self-check serve(): largest "
      "coalesced batch (default 16)\n"
      "  --serve-no-coalesce                 self-check serve(): disable "
      "request coalescing\n");
  return 2;
}

/// serve()-path knobs plumbed from the command line into the
/// self-check's RuntimeOptions.
struct ServeFlags {
  int64_t slo_p99_us = 0;      // --serve-slo-us (0 = no SLO shedding)
  int64_t max_depth = 0;       // --serve-max-depth (0 = unbounded)
  int64_t max_batch = 16;      // --serve-max-batch
  bool coalesce = true;        // --serve-no-coalesce clears
};

/// Serve every artifact entry through a LibraryRuntime sharing the
/// process-wide registry, so a `--metrics-out` export also carries the
/// serving-side counters and per-outcome dispatch-latency histograms.
/// Runs only for `--metrics-out` (it exists to populate the serving
/// metrics; `--trace-out` alone adds no extra work). Sizes are
/// bounded: serving is functional (interpreter-priced), so the check
/// stays cheap even for a full 48-routine artifact. Requests go
/// through serve() — the coalescing + admission production path — so
/// the export reflects the deployed configuration (docs/SERVING.md).
void serving_self_check(const gpusim::DeviceModel& device,
                        libgen::Artifact artifact,
                        const ServeFlags& serve_flags) {
  runtime::RuntimeOptions ropt;
  ropt.metrics = &obs::MetricsRegistry::global();
  ropt.slo_p99_us = static_cast<double>(serve_flags.slo_p99_us);
  ropt.max_queue_depth = static_cast<size_t>(serve_flags.max_depth);
  ropt.max_batch = static_cast<size_t>(serve_flags.max_batch);
  ropt.coalesce = serve_flags.coalesce;
  runtime::LibraryRuntime rt(device, std::move(artifact), ropt);
  for (const libgen::ArtifactEntry& entry :
       rt.snapshot()->artifact().entries) {
    const blas3::Variant* v = blas3::find_variant(entry.variant);
    if (v == nullptr) continue;
    for (int64_t n :
         {int64_t{96}, std::min<int64_t>(entry.tuned_size, 256)}) {
      Rng rng(0x0B5E ^ static_cast<uint64_t>(n));
      const Precision p = v->precision;
      blas3::Matrix a(n, n, p), b(n, n, p), c(n, n, p);
      a.fill_random(rng);
      b.fill_random(rng);
      if (v->family == blas3::Family::kTrmm ||
          v->family == blas3::Family::kTrsm ||
          v->family == blas3::Family::kSymm) {
        a.make_triangular(v->uplo);
      }
      if (v->family == blas3::Family::kTrsm) {
        a.set_unit_diagonal();
        a.scale_off_diagonal(1.0f / 16.0f);
      }
      auto outcome = rt.serve(*v, a, b, &c);
      if (!outcome.is_ok()) {
        std::printf("self-check %s at N=%lld: %s\n", v->name().c_str(),
                    static_cast<long long>(n),
                    outcome.status().to_string().c_str());
      }
    }
  }
  std::printf("serving self-check: %s\n", rt.stats().to_string().c_str());
}

/// Writes the observability exports when main returns, whatever the
/// exit path.
struct ObsExport {
  std::string metrics_path;
  std::string trace_path;
  ~ObsExport() {
    if (!metrics_path.empty() &&
        !obs::write_json(obs::MetricsRegistry::global(), metrics_path)) {
      std::fprintf(stderr, "oagen: cannot write metrics to '%s'\n",
                   metrics_path.c_str());
    }
    if (!trace_path.empty()) {
      std::ofstream out(trace_path);
      if (out) {
        out << obs::TraceCollector::global().to_chrome_json();
      } else {
        std::fprintf(stderr, "oagen: cannot write trace to '%s'\n",
                     trace_path.c_str());
      }
    }
  }
};

}  // namespace

int main(int argc, char** argv) {
  set_log_level(LogLevel::kWarning);
  std::string routine, device_name = "gtx285", script_path, adaptor_path;
  std::string emit_lib, load_lib, metrics_out, trace_out, variants_arg;
  std::string precision_arg = "all";
  int64_t size = 1024, tuning_size = 512, jobs = 0;
  bool list = false, show_candidates = false, show_kernel = false,
       exhaustive = false, no_cache = false, engine_stats = false,
       no_fastpath = false, no_warm_start = false, seed_warm_start = false,
       dump_scripts = false, quick = false, tuning_size_set = false;
  ServeFlags serve_flags;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    // A value flag with nothing after it is a usage error, never an
    // empty string or a silently-parsed 0.
    auto next = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "oagen: %s needs a value\n", arg.c_str());
        return nullptr;
      }
      return argv[++i];
    };
    auto next_int = [&](int64_t min_value, int64_t* out) -> bool {
      const char* v = next();
      if (v == nullptr) return false;
      if (!parse_int64(v, out) || *out < min_value) {
        std::fprintf(stderr,
                     "oagen: %s needs an integer >= %lld, got '%s'\n",
                     arg.c_str(), static_cast<long long>(min_value), v);
        return false;
      }
      return true;
    };
    auto next_str = [&](std::string* out) -> bool {
      const char* v = next();
      if (v == nullptr || *v == '\0') {
        if (v != nullptr) {
          std::fprintf(stderr, "oagen: %s needs a non-empty value\n",
                       arg.c_str());
        }
        return false;
      }
      *out = v;
      return true;
    };
    if (arg == "--routine") {
      if (!next_str(&routine)) return usage();
    } else if (arg == "--device") {
      if (!next_str(&device_name)) return usage();
    } else if (arg == "--size") {
      if (!next_int(1, &size)) return usage();
    } else if (arg == "--tuning-size") {
      if (!next_int(1, &tuning_size)) return usage();
      tuning_size_set = true;
    } else if (arg == "--variants") {
      if (!next_str(&variants_arg)) return usage();
    } else if (arg == "--quick") {
      quick = true;
    } else if (arg == "--precision") {
      if (!next_str(&precision_arg)) return usage();
    } else if (arg == "--script") {
      if (!next_str(&script_path)) return usage();
    } else if (arg == "--adaptor") {
      if (!next_str(&adaptor_path)) return usage();
    } else if (arg == "--list") {
      list = true;
    } else if (arg == "--show-candidates") {
      show_candidates = true;
    } else if (arg == "--show-kernel") {
      show_kernel = true;
    } else if (arg == "--exhaustive") {
      exhaustive = true;
    } else if (arg == "--jobs") {
      if (!next_int(0, &jobs)) return usage();
    } else if (arg == "--no-cache") {
      no_cache = true;
    } else if (arg == "--no-fastpath") {
      no_fastpath = true;
    } else if (arg == "--engine-stats") {
      engine_stats = true;
    } else if (arg == "--emit-lib") {
      if (!next_str(&emit_lib)) return usage();
    } else if (arg == "--load-lib") {
      if (!next_str(&load_lib)) return usage();
    } else if (arg == "--no-warm-start") {
      no_warm_start = true;
    } else if (arg == "--warm-start") {
      seed_warm_start = true;
    } else if (arg == "--dump-scripts") {
      dump_scripts = true;
    } else if (arg == "--metrics-out") {
      if (!next_str(&metrics_out)) return usage();
    } else if (arg == "--trace-out") {
      if (!next_str(&trace_out)) return usage();
    } else if (arg == "--serve-slo-us") {
      if (!next_int(0, &serve_flags.slo_p99_us)) return usage();
    } else if (arg == "--serve-max-depth") {
      if (!next_int(0, &serve_flags.max_depth)) return usage();
    } else if (arg == "--serve-max-batch") {
      if (!next_int(1, &serve_flags.max_batch)) return usage();
    } else if (arg == "--serve-no-coalesce") {
      serve_flags.coalesce = false;
    } else {
      std::fprintf(stderr, "oagen: unknown flag '%s'\n", arg.c_str());
      return usage();
    }
  }
  ObsExport obs_export{metrics_out, trace_out};

  // Strict precision selection: "s"/"f32", "d"/"f64", or "all" (the
  // default — library generation covers the whole 48-variant family).
  const bool all_precisions = precision_arg == "all";
  Precision precision = kLegacyPrecision;
  if (!all_precisions && !parse_precision(precision_arg, &precision)) {
    std::fprintf(stderr,
                 "oagen: --precision must be s, d, f32, f64 or all, got "
                 "'%s'\n",
                 precision_arg.c_str());
    return usage();
  }

  if (list) {
    std::printf("devices: geforce9800, gtx285, fermi\nroutines:\n");
    for (const auto& v : blas3::all_variants()) {
      std::printf("  %s\n", v.name().c_str());
    }
    std::printf("batched routines:\n");
    for (const auto& v : blas3::batched_variants()) {
      std::printf("  %s\n", v.name().c_str());
    }
    return 0;
  }

  // --variants: an explicit multi-routine target list ("GEMM_BATCHED_NN"
  // underscore spellings resolve through the find_variant alias).
  std::vector<const blas3::Variant*> chosen;
  if (!variants_arg.empty()) {
    if (!routine.empty()) {
      std::fprintf(stderr,
                   "oagen: --routine and --variants are exclusive\n");
      return usage();
    }
    std::stringstream names(variants_arg);
    std::string name;
    while (std::getline(names, name, ',')) {
      if (name.empty()) continue;
      const blas3::Variant* v = blas3::find_variant(name);
      if (v == nullptr) {
        std::printf("unknown routine '%s' (try --list)\n", name.c_str());
        return 1;
      }
      chosen.push_back(v);
    }
    if (chosen.empty()) {
      std::fprintf(stderr, "oagen: --variants names no routine\n");
      return usage();
    }
  }

  // Library modes (--emit-lib / --load-lib / --dump-scripts /
  // --variants) default to every routine unless narrowed.
  const bool library_mode = !emit_lib.empty() || !load_lib.empty() ||
                            dump_scripts || !chosen.empty();
  if (routine.empty() && !library_mode) return usage();
  const blas3::Variant* variant = nullptr;
  if (!routine.empty()) {
    variant = blas3::find_variant(routine);
    if (variant == nullptr) {
      std::printf("unknown routine '%s' (try --list)\n", routine.c_str());
      return 1;
    }
    // A named routine already encodes its precision ("DGEMM-NN" is the
    // f64 GEMM); a contradicting --precision is a usage error, not a
    // silent override.
    if (!all_precisions && variant->precision != precision) {
      std::fprintf(stderr, "oagen: routine %s is %s but --precision asked "
                           "for %s\n",
                   variant->name().c_str(),
                   precision_name(variant->precision),
                   precision_name(precision));
      return usage();
    }
  }
  const gpusim::DeviceModel* device = device_by_name(device_name);
  if (device == nullptr) {
    std::printf("unknown device '%s'\n", device_name.c_str());
    return 1;
  }

  OaOptions options;
  options.tuning_size = tuning_size;
  if (quick) {
    // Smoke-test budget: small search size (unless --tuning-size was
    // explicit) and a small verification grid. Matches the CI batched
    // smoke lane, where wall-clock matters more than peak GFLOPS.
    if (!tuning_size_set) options.tuning_size = 96;
    options.verify_size = 48;
  }
  options.exhaustive_search = exhaustive;
  options.jobs = static_cast<size_t>(jobs);
  options.engine_cache = !no_cache;
  options.fastpath = !no_fastpath;
  options.warm_start = !no_warm_start;
  options.seed_from_artifact = seed_warm_start;
  // One registry for the whole pipeline: engine, tuner, composer, and
  // the serving self-check all export into the same --metrics-out file.
  const bool observability = !metrics_out.empty() || !trace_out.empty();
  if (observability) {
    options.metrics = &obs::MetricsRegistry::global();
  }
  if (!trace_out.empty()) {
    options.tracer = &obs::TraceCollector::global();
  }
  OaFramework framework(*device, options);

  std::vector<const blas3::Variant*> targets;
  if (!chosen.empty()) {
    targets = chosen;
  } else if (variant != nullptr) {
    targets.push_back(variant);
  } else {
    for (const blas3::Variant& v : blas3::all_variants()) {
      if (all_precisions || v.precision == precision) targets.push_back(&v);
    }
    // Library generation covers the batched families too — the catalog
    // an artifact serves is 64 routines, not 48 (docs/BATCHED.md).
    for (const blas3::Variant& v : blas3::batched_variants()) {
      if (all_precisions || v.precision == precision) targets.push_back(&v);
    }
  }

  // --- candidate scripts in the artifact text serialization ----------
  if (dump_scripts) {
    for (const blas3::Variant* v : targets) {
      auto candidates = framework.candidates_for(*v);
      if (!candidates.is_ok()) {
        std::printf("%s: %s\n", v->name().c_str(),
                    candidates.status().to_string().c_str());
        return 1;
      }
      std::printf("=== %s: %zu candidate script(s) ===\n",
                  v->name().c_str(), candidates->size());
      for (const composer::Candidate& c : *candidates) {
        std::printf("%s", epod::to_text(c.script).c_str());
      }
    }
    return 0;
  }

  if (!load_lib.empty()) {
    Status loaded = framework.load_library(load_lib);
    if (!loaded.is_ok()) {
      std::printf("load-lib: %s\n", loaded.to_string().c_str());
      return 1;
    }
    std::printf("loaded %zu library entr%s from %s\n",
                framework.library()->entries.size(),
                framework.library()->entries.size() == 1 ? "y" : "ies",
                load_lib.c_str());
  }

  // --- whole-library generation / warm service -----------------------
  if (!emit_lib.empty() || !chosen.empty() ||
      (variant == nullptr && !load_lib.empty())) {
    int failures = 0;
    for (const blas3::Variant* v : targets) {
      auto tuned = framework.generate(*v);
      if (!tuned.is_ok()) {
        std::printf("%-12s FAILED: %s\n", v->name().c_str(),
                    tuned.status().to_string().c_str());
        ++failures;
        continue;
      }
      std::printf("%-12s %8.1f GFLOPS  (%s)\n", v->name().c_str(),
                  tuned->gflops, tuned->params.to_string().c_str());
    }
    if (engine_stats) {
      std::printf("\n%s\n", framework.engine_stats().to_string().c_str());
    }
    if (!emit_lib.empty()) {
      libgen::Artifact artifact = framework.export_library();
      Status annotated = exec::annotate_artifact(artifact, *device);
      if (!annotated.is_ok()) {
        std::printf("emit-lib: exec annotation: %s\n",
                    annotated.to_string().c_str());
        return 1;
      }
      Status saved = libgen::save(artifact, emit_lib);
      if (!saved.is_ok()) {
        std::printf("emit-lib: %s\n", saved.to_string().c_str());
        return 1;
      }
      std::printf("\nwrote %zu entr%s to %s\n", artifact.entries.size(),
                  artifact.entries.size() == 1 ? "y" : "ies",
                  emit_lib.c_str());
    }
    if (!metrics_out.empty()) {
      serving_self_check(*device, framework.export_library(), serve_flags);
    }
    return failures == 0 ? 0 : 1;
  }

  // --- show composer output ------------------------------------------
  if (show_candidates) {
    StatusOr<std::vector<composer::Candidate>> candidates =
        framework.candidates_for(*variant);
    if (!adaptor_path.empty()) {
      auto text = read_file(adaptor_path);
      if (!text.is_ok()) {
        std::printf("%s\n", text.status().to_string().c_str());
        return 1;
      }
      auto adaptor = adl::parse_adaptor(*text);
      if (!adaptor.is_ok()) {
        std::printf("ADL error: %s\n",
                    adaptor.status().to_string().c_str());
        return 1;
      }
      ir::Program source = blas3::make_source_program(*variant);
      transforms::TransformContext ctx;
      candidates = composer::compose(epod::gemm_nn_script(),
                                     {adaptor->bind("A")}, source, ctx);
    }
    if (!candidates.is_ok()) {
      std::printf("%s\n", candidates.status().to_string().c_str());
      return 1;
    }
    std::printf("%zu candidate script(s) for %s:\n\n", candidates->size(),
                variant->name().c_str());
    for (size_t i = 0; i < candidates->size(); ++i) {
      std::printf("--- %zu ---\n%s\n", i + 1,
                  (*candidates)[i].script.to_string().c_str());
    }
    return 0;
  }

  // --- user-provided script ------------------------------------------
  if (!script_path.empty()) {
    auto text = read_file(script_path);
    if (!text.is_ok()) {
      std::printf("%s\n", text.status().to_string().c_str());
      return 1;
    }
    auto script = epod::parse_script(*text);
    if (!script.is_ok()) {
      std::printf("script error: %s\n",
                  script.status().to_string().c_str());
      return 1;
    }
    ir::Program program = blas3::make_source_program(*variant);
    transforms::TransformContext ctx;
    auto mask = epod::apply_script_lenient(program, *script, ctx);
    if (!mask.is_ok()) {
      std::printf("apply failed: %s\n", mask.status().to_string().c_str());
      return 1;
    }
    std::printf("applied %d of %zu component(s)\n",
                __builtin_popcountll(*mask), script->invocations.size());
    Status verified =
        tuner::verify_program(framework.simulator(), *variant, program, 72,
                              {{"blank_zero", true}});
    std::printf("verification: %s\n", verified.to_string().c_str());
    auto gflops =
        framework.measure_baseline_gflops(program, *variant, size);
    if (gflops.is_ok()) {
      std::printf("performance at N=%lld on %s: %.1f GFLOPS\n",
                  static_cast<long long>(size), device->name.c_str(),
                  *gflops);
    }
    if (show_kernel) std::printf("\n%s\n", ir::to_string(program).c_str());
    return verified.is_ok() ? 0 : 1;
  }

  // --- full generation -----------------------------------------------
  auto tuned = framework.generate(*variant);
  if (engine_stats) {
    std::printf("%s\n\n", framework.engine_stats().to_string().c_str());
  }
  if (!tuned.is_ok()) {
    std::printf("generation failed: %s\n",
                tuned.status().to_string().c_str());
    return 1;
  }
  std::printf("best EPOD script for %s on %s (params %s):\n\n%s\n",
              variant->name().c_str(), device->name.c_str(),
              tuned->params.to_string().c_str(),
              tuned->candidate.script.to_string().c_str());
  auto gflops = framework.measure_gflops(*tuned, *variant, size);
  if (gflops.is_ok()) {
    std::printf("performance at N=%lld: %.1f GFLOPS\n",
                static_cast<long long>(size), *gflops);
  }
  auto cublas = baseline::cublas_like(*variant, *device);
  if (cublas.is_ok()) {
    auto base = framework.measure_baseline_gflops(*cublas, *variant, size);
    if (base.is_ok() && *base > 0 && gflops.is_ok()) {
      std::printf("CUBLAS-like baseline: %.1f GFLOPS (speedup %.2fx)\n",
                  *base, *gflops / *base);
    }
  }
  if (show_kernel) {
    std::printf("\n%s\n", ir::to_string(tuned->program).c_str());
  }
  if (!metrics_out.empty()) {
    serving_self_check(*device, framework.export_library(), serve_flags);
  }
  return 0;
}
