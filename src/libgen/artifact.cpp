#include "libgen/artifact.hpp"

#include <bit>
#include <cstdlib>
#include <fstream>
#include <sstream>

#include "blas3/source_ir.hpp"
#include "support/hash.hpp"
#include "support/strings.hpp"

namespace oa::libgen {

using blas3::Variant;
using engine::Evaluation;
using transforms::TuningParams;

namespace {

std::string hex64(uint64_t v) {
  return str_format("%016llx", static_cast<unsigned long long>(v));
}

StatusOr<uint64_t> parse_hex64(const std::string& text, size_t lineno) {
  char* end = nullptr;
  const unsigned long long v = std::strtoull(text.c_str(), &end, 16);
  if (end == text.c_str() || *end != '\0') {
    return invalid_argument(str_format(
        "artifact line %zu: malformed hex value '%s'", lineno,
        text.c_str()));
  }
  return static_cast<uint64_t>(v);
}

StatusOr<int64_t> parse_int(const std::string& text, size_t lineno) {
  char* end = nullptr;
  const long long v = std::strtoll(text.c_str(), &end, 10);
  if (end == text.c_str() || *end != '\0') {
    return invalid_argument(str_format(
        "artifact line %zu: malformed integer '%s'", lineno,
        text.c_str()));
  }
  return static_cast<int64_t>(v);
}

/// Hexfloat is the authoritative value (bit-exact round trip); the
/// decimal in parentheses is for human readers and ignored on parse.
std::string format_double(double v) {
  return str_format("%a (%.6g)", v, v);
}

StatusOr<double> parse_double(const std::string& text, size_t lineno) {
  char* end = nullptr;
  const double v = std::strtod(text.c_str(), &end);
  if (end == text.c_str()) {
    return invalid_argument(str_format(
        "artifact line %zu: malformed number '%s'", lineno, text.c_str()));
  }
  return v;
}

/// Line cursor with truncation-aware key/value reads.
class LineCursor {
 public:
  explicit LineCursor(std::string_view text)
      : lines_(split(text, '\n')) {}

  size_t lineno() const { return i_ + 1; }

  void skip_blank() {
    while (i_ < lines_.size() && lines_[i_].empty()) ++i_;
  }

  bool at_end() {
    skip_blank();
    return i_ >= lines_.size();
  }

  /// Next line must be "<key> <value>"; returns the value.
  StatusOr<std::string> take(const std::string& key) {
    skip_blank();
    if (i_ >= lines_.size()) {
      return invalid_argument(str_format(
          "truncated artifact: expected '%s' but the file ends at line "
          "%zu",
          key.c_str(), lineno()));
    }
    const std::string& line = lines_[i_];
    if (!starts_with(line, key) ||
        (line.size() > key.size() && line[key.size()] != ' ')) {
      return invalid_argument(str_format(
          "artifact line %zu: expected '%s ...', got '%s'", lineno(),
          key.c_str(), line.c_str()));
    }
    ++i_;
    if (line.size() <= key.size()) return std::string();
    return std::string(trim(std::string_view(line).substr(key.size())));
  }

  /// Next line must be an embedded content line: "| <content>".
  StatusOr<std::string> take_content() {
    // No skip_blank: embedded blocks are contiguous, a hole means
    // truncation or corruption.
    if (i_ >= lines_.size()) {
      return invalid_argument(str_format(
          "truncated artifact: embedded block ends at line %zu",
          lineno()));
    }
    const std::string& line = lines_[i_];
    if (line == "|") {
      ++i_;
      return std::string();
    }
    if (!starts_with(line, "| ")) {
      return invalid_argument(str_format(
          "artifact line %zu: expected '| <content>', got '%s'", lineno(),
          line.c_str()));
    }
    ++i_;
    return line.substr(2);
  }

 private:
  std::vector<std::string> lines_;
  size_t i_ = 0;
};

}  // namespace

composer::Candidate ArtifactEntry::candidate() const {
  composer::Candidate c;
  c.script = script;
  c.conditions = conditions;
  return c;
}

uint64_t ArtifactEntry::content_hash(int format_version) const {
  Fingerprint fp;
  fp.mix(variant);
  // v1 predates the precision axis; hashing it would invalidate every
  // entry_hash line in legacy artifacts.
  if (format_version >= 2) fp.mix(std::string_view(precision_name(precision)));
  // v3 predates the batch axis; v4+ entries seal the tuning batch.
  if (format_version >= 4) fp.mix(tuned_batch);
  fp.mix(tuned_size)
      .mix(applied_mask)
      .mix(script_fingerprint)
      .mix(candidate_fingerprint)
      .mix(params_fingerprint)
      .mix(std::bit_cast<uint64_t>(gflops))
      .mix(std::bit_cast<uint64_t>(seconds));
  fp.mix(static_cast<uint64_t>(conditions.size()));
  for (const std::string& c : conditions) fp.mix(c);
  // The *parsed* script and params, not just the recorded fingerprints:
  // a flipped byte in the script text changes this hash even though the
  // recorded fingerprint lines still hold the original values.
  fp.mix(script.fingerprint());
  fp.mix(params.fingerprint());
  // v2 predates the native-execution sidecar.
  if (format_version >= 3) {
    fp.mix(static_cast<uint64_t>(exec.size()));
    for (const ExecRecord& r : exec) {
      fp.mix(r.kernel).mix(r.key).mix(r.tape_ops).mix(r.segments);
    }
  }
  return fp.digest();
}

const ArtifactEntry* Artifact::find(const std::string& variant) const {
  for (const ArtifactEntry& e : entries) {
    if (e.variant == variant) return &e;
  }
  return nullptr;
}

void Artifact::upsert(ArtifactEntry e) {
  for (ArtifactEntry& existing : entries) {
    if (existing.variant == e.variant) {
      existing = std::move(e);
      return;
    }
  }
  entries.push_back(std::move(e));
}

uint64_t device_fingerprint(const gpusim::DeviceModel& d) {
  Fingerprint fp;
  fp.mix(d.name)
      .mix(d.sm_count)
      .mix(d.sps_per_sm)
      .mix(d.warp_size)
      .mix(d.registers_per_sm)
      .mix(d.shared_mem_per_sm)
      .mix(d.max_threads_per_sm)
      .mix(d.max_blocks_per_sm)
      .mix(d.max_threads_per_block)
      .mix(std::bit_cast<uint64_t>(d.clock_ghz))
      .mix(std::bit_cast<uint64_t>(d.mem_bandwidth_gbs))
      .mix(std::bit_cast<uint64_t>(d.peak_gflops))
      .mix(static_cast<int>(d.coalescing))
      .mix(d.shared_banks)
      .mix(d.transaction_bytes)
      .mix(std::bit_cast<uint64_t>(d.issue_efficiency))
      .mix(d.latency_hiding_warps)
      .mix(std::bit_cast<uint64_t>(d.launch_overhead_s))
      .mix(d.base_regs_per_thread);
  return fp.digest();
}

ArtifactEntry make_entry(const Variant& v, const Evaluation& eval,
                         int64_t tuned_size) {
  ArtifactEntry e;
  e.variant = v.name();
  e.precision = v.precision;
  e.script = eval.candidate.script;
  e.conditions = eval.candidate.conditions;
  e.params = eval.params;
  e.applied_mask = eval.applied_mask;
  e.script_fingerprint = eval.candidate.script.fingerprint();
  e.candidate_fingerprint = eval.candidate.fingerprint();
  e.params_fingerprint = eval.params.fingerprint();
  e.gflops = eval.gflops;
  e.seconds = eval.seconds;
  e.tuned_size = tuned_size;
  e.tuned_batch = blas3::tuning_batch(v);
  return e;
}

std::string to_text(const Artifact& artifact) {
  std::ostringstream os;
  // Serialization always emits the current format, whatever version the
  // artifact was parsed from.
  os << "oablas-artifact " << kFormatVersion << "\n";
  os << "device " << artifact.device << "\n";
  os << "device_fp " << hex64(artifact.device_fp) << "\n";
  os << "generator "
     << (artifact.generator.empty() ? "unknown" : artifact.generator)
     << "\n";
  os << "entries " << artifact.entries.size() << "\n";
  for (const ArtifactEntry& e : artifact.entries) {
    os << "\n";
    os << "entry " << e.variant << "\n";
    os << "precision " << precision_name(e.precision) << "\n";
    os << "tuned_size " << e.tuned_size << "\n";
    os << "batch " << e.tuned_batch << "\n";
    os << "params " << e.params.block_tile_y << " " << e.params.block_tile_x
       << " " << e.params.threads_y << " " << e.params.threads_x << " "
       << e.params.k_tile << " " << e.params.unroll << "\n";
    os << "applied_mask " << hex64(e.applied_mask) << "\n";
    os << "script_fp " << hex64(e.script_fingerprint) << "\n";
    os << "candidate_fp " << hex64(e.candidate_fingerprint) << "\n";
    os << "params_fp " << hex64(e.params_fingerprint) << "\n";
    os << "gflops " << format_double(e.gflops) << "\n";
    os << "seconds " << format_double(e.seconds) << "\n";
    os << "conditions " << e.conditions.size() << "\n";
    for (const std::string& c : e.conditions) {
      os << (c.empty() ? "|" : "| " + c) << "\n";
    }
    const std::vector<std::string> script_lines =
        split(epod::to_text(e.script), '\n', /*skip_empty=*/true);
    os << "script " << script_lines.size() << "\n";
    for (const std::string& line : script_lines) {
      os << "| " << line << "\n";
    }
    os << "exec " << e.exec.size() << "\n";
    for (const ExecRecord& r : e.exec) {
      os << "| " << r.kernel << " " << hex64(r.key) << " " << r.tape_ops
         << " " << r.segments << "\n";
    }
    os << "entry_hash " << hex64(e.content_hash()) << "\n";
  }
  os << "\nend " << artifact.entries.size() << "\n";
  return os.str();
}

StatusOr<Artifact> parse(std::string_view text) {
  LineCursor cur(text);
  Artifact art;

  OA_ASSIGN_OR_RETURN(std::string version_text, cur.take("oablas-artifact"));
  OA_ASSIGN_OR_RETURN(int64_t version, parse_int(version_text, cur.lineno()));
  if (version < kMinReadVersion || version > kFormatVersion) {
    return invalid_argument(str_format(
        "unsupported artifact format version %lld (this build reads "
        "versions %d through %d)",
        static_cast<long long>(version), kMinReadVersion, kFormatVersion));
  }
  art.format_version = static_cast<int>(version);
  OA_ASSIGN_OR_RETURN(art.device, cur.take("device"));
  OA_ASSIGN_OR_RETURN(std::string fp_text, cur.take("device_fp"));
  OA_ASSIGN_OR_RETURN(art.device_fp, parse_hex64(fp_text, cur.lineno()));
  OA_ASSIGN_OR_RETURN(art.generator, cur.take("generator"));
  OA_ASSIGN_OR_RETURN(std::string count_text, cur.take("entries"));
  OA_ASSIGN_OR_RETURN(int64_t count, parse_int(count_text, cur.lineno()));
  if (count < 0) {
    return invalid_argument("artifact header: negative entry count");
  }

  for (int64_t n = 0; n < count; ++n) {
    ArtifactEntry e;
    OA_ASSIGN_OR_RETURN(e.variant, cur.take("entry"));
    const size_t entry_line = cur.lineno() - 1;
    if (version >= 2) {
      OA_ASSIGN_OR_RETURN(std::string prec_text, cur.take("precision"));
      if (!parse_precision(prec_text, &e.precision)) {
        return invalid_argument(str_format(
            "artifact entry '%s' (line %zu): unknown precision '%s' "
            "(expected f32 or f64)",
            e.variant.c_str(), entry_line, prec_text.c_str()));
      }
    } else {
      // v1 entries predate the axis: the generated library was the
      // paper's single-precision catalog.
      e.precision = kLegacyPrecision;
    }
    OA_ASSIGN_OR_RETURN(std::string ts, cur.take("tuned_size"));
    OA_ASSIGN_OR_RETURN(e.tuned_size, parse_int(ts, cur.lineno()));
    if (version >= 4) {
      OA_ASSIGN_OR_RETURN(std::string tb, cur.take("batch"));
      OA_ASSIGN_OR_RETURN(e.tuned_batch, parse_int(tb, cur.lineno()));
      if (e.tuned_batch < 1) {
        return invalid_argument(str_format(
            "artifact entry '%s' (line %zu): batch must be positive, "
            "got %lld",
            e.variant.c_str(), entry_line,
            static_cast<long long>(e.tuned_batch)));
      }
    } else {
      // v1-v3 predate the batch axis: every entry is a single call.
      e.tuned_batch = 1;
    }

    OA_ASSIGN_OR_RETURN(std::string params_text, cur.take("params"));
    const std::vector<std::string> fields =
        split(params_text, ' ', /*skip_empty=*/true);
    if (fields.size() != 6) {
      return invalid_argument(str_format(
          "artifact line %zu: 'params' needs 6 fields (bty btx ty tx kt "
          "unroll), got %zu",
          cur.lineno() - 1, fields.size()));
    }
    OA_ASSIGN_OR_RETURN(e.params.block_tile_y,
                        parse_int(fields[0], cur.lineno()));
    OA_ASSIGN_OR_RETURN(e.params.block_tile_x,
                        parse_int(fields[1], cur.lineno()));
    OA_ASSIGN_OR_RETURN(e.params.threads_y,
                        parse_int(fields[2], cur.lineno()));
    OA_ASSIGN_OR_RETURN(e.params.threads_x,
                        parse_int(fields[3], cur.lineno()));
    OA_ASSIGN_OR_RETURN(e.params.k_tile, parse_int(fields[4], cur.lineno()));
    OA_ASSIGN_OR_RETURN(int64_t unroll, parse_int(fields[5], cur.lineno()));
    e.params.unroll = static_cast<int>(unroll);
    // A syntactically valid entry can still carry values no tuner run
    // would ever record (threads_y = 0 divides in thread_extent_y()) —
    // a loaded artifact is untrusted input, so reject them here.
    if (const Status ps = e.params.check(); !ps.is_ok()) {
      return invalid_argument(str_format(
          "artifact entry '%s' (line %zu): bad tuning params: %s",
          e.variant.c_str(), entry_line, ps.message().c_str()));
    }
    if (e.tuned_size < 1) {
      return invalid_argument(str_format(
          "artifact entry '%s' (line %zu): tuned_size must be positive, "
          "got %lld",
          e.variant.c_str(), entry_line,
          static_cast<long long>(e.tuned_size)));
    }

    OA_ASSIGN_OR_RETURN(std::string mask_text, cur.take("applied_mask"));
    OA_ASSIGN_OR_RETURN(e.applied_mask,
                        parse_hex64(mask_text, cur.lineno()));
    OA_ASSIGN_OR_RETURN(std::string sfp, cur.take("script_fp"));
    OA_ASSIGN_OR_RETURN(e.script_fingerprint,
                        parse_hex64(sfp, cur.lineno()));
    OA_ASSIGN_OR_RETURN(std::string cfp, cur.take("candidate_fp"));
    OA_ASSIGN_OR_RETURN(e.candidate_fingerprint,
                        parse_hex64(cfp, cur.lineno()));
    OA_ASSIGN_OR_RETURN(std::string pfp, cur.take("params_fp"));
    OA_ASSIGN_OR_RETURN(e.params_fingerprint,
                        parse_hex64(pfp, cur.lineno()));
    OA_ASSIGN_OR_RETURN(std::string gf, cur.take("gflops"));
    OA_ASSIGN_OR_RETURN(e.gflops, parse_double(gf, cur.lineno()));
    OA_ASSIGN_OR_RETURN(std::string sec, cur.take("seconds"));
    OA_ASSIGN_OR_RETURN(e.seconds, parse_double(sec, cur.lineno()));

    OA_ASSIGN_OR_RETURN(std::string nc_text, cur.take("conditions"));
    OA_ASSIGN_OR_RETURN(int64_t nc, parse_int(nc_text, cur.lineno()));
    for (int64_t k = 0; k < nc; ++k) {
      OA_ASSIGN_OR_RETURN(std::string cond, cur.take_content());
      e.conditions.push_back(std::move(cond));
    }

    OA_ASSIGN_OR_RETURN(std::string ns_text, cur.take("script"));
    OA_ASSIGN_OR_RETURN(int64_t ns, parse_int(ns_text, cur.lineno()));
    std::string script_text;
    for (int64_t k = 0; k < ns; ++k) {
      OA_ASSIGN_OR_RETURN(std::string line, cur.take_content());
      script_text += line;
      script_text += "\n";
    }
    auto script = epod::parse(script_text);
    if (!script.is_ok()) {
      return invalid_argument(str_format(
          "artifact entry '%s' (line %zu): script does not parse: %s",
          e.variant.c_str(), entry_line,
          script.status().message().c_str()));
    }
    e.script = std::move(script).value();

    if (version >= 3) {
      OA_ASSIGN_OR_RETURN(std::string ne_text, cur.take("exec"));
      OA_ASSIGN_OR_RETURN(int64_t ne, parse_int(ne_text, cur.lineno()));
      for (int64_t k = 0; k < ne; ++k) {
        OA_ASSIGN_OR_RETURN(std::string rec, cur.take_content());
        const std::vector<std::string> rf =
            split(rec, ' ', /*skip_empty=*/true);
        if (rf.size() != 4) {
          return invalid_argument(str_format(
              "artifact entry '%s' (line %zu): 'exec' record needs 4 "
              "fields (kernel key tape_ops segments), got %zu",
              e.variant.c_str(), cur.lineno() - 1, rf.size()));
        }
        ExecRecord r;
        r.kernel = rf[0];
        OA_ASSIGN_OR_RETURN(r.key, parse_hex64(rf[1], cur.lineno()));
        OA_ASSIGN_OR_RETURN(r.tape_ops, parse_int(rf[2], cur.lineno()));
        OA_ASSIGN_OR_RETURN(r.segments, parse_int(rf[3], cur.lineno()));
        e.exec.push_back(std::move(r));
      }
    }
    // v1/v2 entries load with an empty sidecar; annotate_artifact
    // re-derives it on the next save.

    OA_ASSIGN_OR_RETURN(std::string hash_text, cur.take("entry_hash"));
    OA_ASSIGN_OR_RETURN(uint64_t recorded,
                        parse_hex64(hash_text, cur.lineno()));
    if (recorded != e.content_hash(static_cast<int>(version))) {
      return invalid_argument(str_format(
          "artifact entry '%s' (line %zu): content hash mismatch — the "
          "entry is corrupt",
          e.variant.c_str(), entry_line));
    }
    // The variant name encodes precision (f64 names carry the "D"
    // prefix), so a catalog entry whose recorded precision disagrees
    // with its name is corrupt, not merely unusual.
    if (const Variant* v = blas3::find_variant(e.variant);
        v != nullptr && v->precision != e.precision) {
      return invalid_argument(str_format(
          "artifact entry '%s' (line %zu): recorded precision %s does "
          "not match the variant's precision %s",
          e.variant.c_str(), entry_line, precision_name(e.precision),
          precision_name(v->precision)));
    }
    // Writer sanity: the recorded fingerprints must match what the
    // parsed content re-derives (they are what warm-start compares).
    if (e.script_fingerprint != e.script.fingerprint() ||
        e.candidate_fingerprint != e.candidate().fingerprint() ||
        e.params_fingerprint != e.params.fingerprint()) {
      return invalid_argument(str_format(
          "artifact entry '%s' (line %zu): recorded fingerprints do not "
          "match the entry content",
          e.variant.c_str(), entry_line));
    }
    art.entries.push_back(std::move(e));
  }

  OA_ASSIGN_OR_RETURN(std::string end_text, cur.take("end"));
  OA_ASSIGN_OR_RETURN(int64_t end_count, parse_int(end_text, cur.lineno()));
  if (end_count != count ||
      static_cast<int64_t>(art.entries.size()) != count) {
    return invalid_argument(str_format(
        "truncated artifact: header promises %lld entries, trailer "
        "confirms %lld, parsed %zu",
        static_cast<long long>(count), static_cast<long long>(end_count),
        art.entries.size()));
  }
  if (!cur.at_end()) {
    return invalid_argument(str_format(
        "artifact line %zu: trailing content after the end marker",
        cur.lineno()));
  }
  return art;
}

Status save(const Artifact& artifact, const std::string& path) {
  std::ofstream out(path, std::ios::trunc);
  if (!out) {
    return not_found("cannot open '" + path + "' for writing");
  }
  out << to_text(artifact);
  out.flush();
  if (!out) {
    return internal_error("short write to '" + path + "'");
  }
  return Status::ok();
}

StatusOr<Artifact> load(const std::string& path) {
  std::ifstream in(path);
  if (!in) return not_found("cannot open artifact '" + path + "'");
  std::ostringstream ss;
  ss << in.rdbuf();
  auto parsed = parse(ss.str());
  if (!parsed.is_ok()) {
    return Status(parsed.status().code(),
                  "'" + path + "': " + parsed.status().message());
  }
  return parsed;
}

Status check_device(const Artifact& artifact,
                    const gpusim::DeviceModel& device) {
  if (artifact.device != device.name) {
    return failed_precondition(str_format(
        "artifact was generated for device '%s', not '%s'",
        artifact.device.c_str(), device.name.c_str()));
  }
  if (artifact.device_fp != device_fingerprint(device)) {
    return failed_precondition(str_format(
        "artifact device fingerprint %s does not match this build's "
        "'%s' preset (%s) — the device model changed since generation",
        hex64(artifact.device_fp).c_str(), device.name.c_str(),
        hex64(device_fingerprint(device)).c_str()));
  }
  return Status::ok();
}

StatusOr<Evaluation> reconstruct(
    const ArtifactEntry& entry, const Variant& v,
    const std::vector<composer::Candidate>& fresh_candidates) {
  if (entry.variant != v.name()) {
    return invalid_argument("artifact entry '" + entry.variant +
                            "' reconstructed as '" + v.name() + "'");
  }
  composer::Candidate candidate = entry.candidate();
  bool still_composed = false;
  for (const composer::Candidate& fresh : fresh_candidates) {
    if (fresh.fingerprint() == entry.candidate_fingerprint) {
      still_composed = true;
      break;
    }
  }
  if (!still_composed) {
    return failed_precondition(
        "no freshly composed candidate matches the artifact entry for " +
        entry.variant + " — the tuning experience drifted, search again");
  }
  transforms::TransformContext ctx;
  ctx.params = entry.params;
  ir::Program program = blas3::make_source_program(v);
  OA_ASSIGN_OR_RETURN(
      uint64_t mask,
      epod::apply_script_lenient(program, candidate.script, ctx));
  if (mask != entry.applied_mask) {
    return failed_precondition(str_format(
        "artifact entry %s re-applies to component mask %llx, recorded "
        "%llx — component behaviour changed since generation",
        entry.variant.c_str(), static_cast<unsigned long long>(mask),
        static_cast<unsigned long long>(entry.applied_mask)));
  }
  Evaluation out;
  out.candidate = std::move(candidate);
  out.params = entry.params;
  out.program = std::move(program);
  out.seconds = entry.seconds;
  out.gflops = entry.gflops;
  out.applied_mask = entry.applied_mask;
  // Counters are not persisted: a warm-started evaluation carries the
  // artifact's timing numbers and an empty counter set (profile() runs
  // the simulator when counters are needed).
  out.from_cache = true;
  return out;
}

SessionStore& SessionStore::instance() {
  static SessionStore* store = new SessionStore();
  return *store;
}

void SessionStore::put(const std::string& device,
                       const std::string& variant, Record record) {
  std::lock_guard<std::mutex> lock(mu_);
  records_[{device, variant}] = std::move(record);
}

std::optional<SessionStore::Record> SessionStore::get(
    const std::string& device, const std::string& variant) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = records_.find({device, variant});
  if (it == records_.end()) return std::nullopt;
  return it->second;
}

void SessionStore::clear() {
  std::lock_guard<std::mutex> lock(mu_);
  records_.clear();
}

size_t SessionStore::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return records_.size();
}

}  // namespace oa::libgen
