// Persistent library artifacts — the paper's end product made durable.
//
// The OA framework's output is a generated BLAS3 *library*: one tuned
// kernel per routine variant per device. Until now that library only
// existed inside a single process; every oagen/bench run re-composed
// and re-tuned from scratch. This module defines the versioned on-disk
// artifact that captures a whole tuning trajectory so it can be
// re-served (runtime/LibraryRuntime), warm-started
// (OaFramework::generate skips the search when fingerprints still
// match), shipped between processes, and cached in CI.
//
// Format (docs/ARTIFACT.md): a line-oriented, human-readable text file.
//
//   oablas-artifact 4                  <- format version (header)
//   device gtx285                      <- device preset name
//   device_fp 8d4c...                  <- preset fingerprint (all fields)
//   generator oagen                    <- build metadata (free-form)
//   entries 48
//
//   entry GEMM-NN
//   precision f32                      <- element type (v2+; v1 entries
//   tuned_size 512                        load as the legacy f32)
//   batch 1                            <- tuning batch count (v4+; 1 for
//                                         single variants, the batched
//                                         families record theirs)
//   params 64 16 64 1 16 4             <- bty btx ty tx kt unroll
//   applied_mask 1f
//   script_fp <hex>                    <- PR-1 fingerprints, verbatim
//   candidate_fp <hex>
//   params_fp <hex>
//   gflops 0x1.8cp+8 (396.00)          <- hexfloat is authoritative,
//   seconds 0x1.2p-10 (0.001...)          decimal is for humans
//   conditions 1
//   | blank(A).zero = true
//   script 6
//   | //! routine: GEMM-NN             <- epod::to_text, round-trips
//   | (Lii, Ljj) = thread_grouping(Li, Lj);
//   | ...
//   exec 2                             <- native-exec sidecar (v3+):
//   | pack_A 8d4c... 37 3                 kernel, exec-cache key,
//   | gemm_main 91ab... 214 5             tape ops, segment count
//   entry_hash <hex>                   <- content hash over the entry
//
//   end 48                             <- trailer: truncation detector
//
// Integrity: every entry carries a content hash over its parsed fields;
// load() re-derives it, so a flipped byte anywhere in an entry is a
// Status error, not a silently different library. A missing/short
// trailer reports truncation; an unknown header version or a foreign
// device preset reports version/device mismatch.
//
// Compatibility: parse() reads versions 1 through 4. Version 1
// predates the precision axis — its entries have no `precision` line
// and load as the legacy single precision (the paper's 24-variant
// catalog is f32). Version 2 predates the native-execution sidecar —
// its entries have no `exec` section and load with an empty one.
// Version 3 predates the batched families — its entries have no
// `batch` line and load with a tuning batch of 1. All legacy versions
// re-derive the content hash under their own version's field set so
// old entry_hash lines still verify. save()/to_text() always write
// version 4.
#pragma once

#include <cstdint>
#include <map>
#include <mutex>
#include <optional>
#include <utility>
#include <string>
#include <vector>

#include "blas3/routine.hpp"
#include "composer/composer.hpp"
#include "engine/evaluation_engine.hpp"
#include "epod/script.hpp"
#include "gpusim/device.hpp"
#include "support/status.hpp"

namespace oa::libgen {

/// Current on-disk format version. Bump on any incompatible change to
/// the grammar or to the meaning of a recorded field. load() reads the
/// current version and the listed legacy versions; anything else is
/// rejected outright (compatibility policy in docs/ARTIFACT.md).
inline constexpr int kFormatVersion = 4;
/// Oldest version parse() still reads (v1: no precision axis; v2: no
/// native-execution sidecar; v3: no batch axis).
inline constexpr int kMinReadVersion = 1;

/// Native-execution sidecar (v3+): one record per kernel of an entry's
/// reconstructed program, written by exec::annotate_artifact. The key
/// is the content-addressed exec-cache key (exec::kernel_key), so a
/// shipped artifact documents exactly which lowered kernels a serving
/// process will compile — machine code itself is never persisted (it
/// is host-specific and cheap to re-emit).
struct ExecRecord {
  std::string kernel;    // kernel name within the program
  uint64_t key = 0;      // exec::kernel_key of the compiled kernel
  int64_t tape_ops = 0;  // total lowered tape instructions
  int64_t segments = 0;  // sync-free segments
};

/// One tuned variant: the winning EPOD script (text-serialized), its
/// tuning parameters, the applied-component mask, the engine's
/// fingerprints, and the measured performance at tuning size.
struct ArtifactEntry {
  std::string variant;                  // paper-style name, "SYMM-LL"
  Precision precision = kLegacyPrecision;  // element type of the kernel
  epod::Script script;                  // winning composed script
  std::vector<std::string> conditions;  // candidate rule conditions
  transforms::TuningParams params;
  uint64_t applied_mask = 0;
  uint64_t script_fingerprint = 0;      // script.fingerprint() at save
  uint64_t candidate_fingerprint = 0;   // composer::Candidate fp
  uint64_t params_fingerprint = 0;      // params.fingerprint() at save
  double gflops = 0.0;                  // at tuned_size
  double seconds = 0.0;                 // simulated kernel time
  int64_t tuned_size = 0;               // problem size the tuner used
  /// Batch count the entry was tuned (and priced) at: 1 for single
  /// variants, blas3::tuning_batch(v) for the batched families (v4+;
  /// v1-v3 entries load with 1).
  int64_t tuned_batch = 1;
  /// Native-exec sidecar (v3+), possibly empty: what the execution
  /// backend lowers this entry's kernels to at tuned_size.
  std::vector<ExecRecord> exec;

  /// The candidate this entry was tuned from (script + conditions).
  composer::Candidate candidate() const;

  /// Content hash over every recorded field (the `entry_hash` line).
  /// The hash is computed under a format version's field set: v1 never
  /// recorded precision, so verifying a v1 entry must exclude it.
  uint64_t content_hash(int format_version = kFormatVersion) const;
};

/// A whole generated library for one device preset.
struct Artifact {
  int format_version = kFormatVersion;
  std::string device;             // preset name ("gtx285")
  uint64_t device_fp = 0;         // device_fingerprint() of the preset
  std::string generator;          // build metadata, free-form one line
  std::vector<ArtifactEntry> entries;

  /// Entry for a variant name, or nullptr.
  const ArtifactEntry* find(const std::string& variant) const;
  /// Insert or replace the entry for `e.variant` (keeps name order
  /// stable: replaces in place, appends otherwise).
  void upsert(ArtifactEntry e);
};

/// Stable fingerprint over every field of a device preset; a changed
/// calibration constant invalidates artifacts tuned under the old one.
uint64_t device_fingerprint(const gpusim::DeviceModel& device);

/// Build an entry from a finished evaluation (fills every fingerprint).
ArtifactEntry make_entry(const blas3::Variant& v,
                         const engine::Evaluation& eval,
                         int64_t tuned_size);

/// Serialize / parse the text format. parse() performs all integrity
/// checks: header version, per-entry content hashes, entry count,
/// trailer presence. Errors name the offending artifact line.
std::string to_text(const Artifact& artifact);
StatusOr<Artifact> parse(std::string_view text);

/// File-level save/load (load = read + parse).
Status save(const Artifact& artifact, const std::string& path);
StatusOr<Artifact> load(const std::string& path);

/// kFailedPrecondition unless the artifact was generated for exactly
/// this device preset (name and fingerprint).
Status check_device(const Artifact& artifact,
                    const gpusim::DeviceModel& device);

/// Warm start: rebuild the full evaluation from an artifact entry
/// without re-verifying or re-simulating. Succeeds only when the
/// entry's candidate fingerprint still matches one of the freshly
/// composed candidates and the script re-applies to the identical
/// component mask — otherwise the tuning experience has drifted and
/// the caller must search again (optionally seeded with entry.params).
StatusOr<engine::Evaluation> reconstruct(
    const ArtifactEntry& entry, const blas3::Variant& v,
    const std::vector<composer::Candidate>& fresh_candidates);

/// Process-wide in-memory library: every OaFramework::generate records
/// its result here (keyed by device preset x variant), so a *second*
/// framework instance in the same process warm-starts instead of
/// re-tuning — the cross-instance result cache the per-instance map in
/// OaFramework could never provide. Thread-safe.
class SessionStore {
 public:
  static SessionStore& instance();

  struct Record {
    engine::Evaluation eval;  // full evaluation, counters included
    int64_t tuned_size = 0;
  };

  void put(const std::string& device, const std::string& variant,
           Record record);
  std::optional<Record> get(const std::string& device,
                            const std::string& variant) const;
  void clear();
  size_t size() const;

 private:
  mutable std::mutex mu_;
  std::map<std::pair<std::string, std::string>, Record> records_;
};

}  // namespace oa::libgen
