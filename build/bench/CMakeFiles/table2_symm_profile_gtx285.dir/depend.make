# Empty dependencies file for table2_symm_profile_gtx285.
# This may be replaced when dependencies are built.
