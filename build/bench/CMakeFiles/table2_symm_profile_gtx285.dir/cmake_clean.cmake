file(REMOVE_RECURSE
  "CMakeFiles/table2_symm_profile_gtx285.dir/table2_symm_profile_gtx285.cpp.o"
  "CMakeFiles/table2_symm_profile_gtx285.dir/table2_symm_profile_gtx285.cpp.o.d"
  "table2_symm_profile_gtx285"
  "table2_symm_profile_gtx285.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table2_symm_profile_gtx285.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
