file(REMOVE_RECURSE
  "CMakeFiles/extension_syrk.dir/extension_syrk.cpp.o"
  "CMakeFiles/extension_syrk.dir/extension_syrk.cpp.o.d"
  "extension_syrk"
  "extension_syrk.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/extension_syrk.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
