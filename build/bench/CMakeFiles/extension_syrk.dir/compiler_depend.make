# Empty compiler generated dependencies file for extension_syrk.
# This may be replaced when dependencies are built.
