# Empty compiler generated dependencies file for microbench_sim.
# This may be replaced when dependencies are built.
