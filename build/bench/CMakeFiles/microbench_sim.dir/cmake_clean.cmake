file(REMOVE_RECURSE
  "CMakeFiles/microbench_sim.dir/microbench_sim.cpp.o"
  "CMakeFiles/microbench_sim.dir/microbench_sim.cpp.o.d"
  "microbench_sim"
  "microbench_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/microbench_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
