# Empty dependencies file for microbench_sim.
# This may be replaced when dependencies are built.
