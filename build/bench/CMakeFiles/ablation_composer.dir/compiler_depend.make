# Empty compiler generated dependencies file for ablation_composer.
# This may be replaced when dependencies are built.
