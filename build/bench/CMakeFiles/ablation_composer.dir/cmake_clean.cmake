file(REMOVE_RECURSE
  "CMakeFiles/ablation_composer.dir/ablation_composer.cpp.o"
  "CMakeFiles/ablation_composer.dir/ablation_composer.cpp.o.d"
  "ablation_composer"
  "ablation_composer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_composer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
