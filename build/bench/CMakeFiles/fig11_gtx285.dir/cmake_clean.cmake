file(REMOVE_RECURSE
  "CMakeFiles/fig11_gtx285.dir/fig11_gtx285.cpp.o"
  "CMakeFiles/fig11_gtx285.dir/fig11_gtx285.cpp.o.d"
  "fig11_gtx285"
  "fig11_gtx285.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig11_gtx285.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
