# Empty compiler generated dependencies file for fig11_gtx285.
# This may be replaced when dependencies are built.
