
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/fig11_gtx285.cpp" "bench/CMakeFiles/fig11_gtx285.dir/fig11_gtx285.cpp.o" "gcc" "bench/CMakeFiles/fig11_gtx285.dir/fig11_gtx285.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/bench/CMakeFiles/bench_common.dir/DependInfo.cmake"
  "/root/repo/build/src/oa/CMakeFiles/oa_oa.dir/DependInfo.cmake"
  "/root/repo/build/src/tuner/CMakeFiles/oa_tuner.dir/DependInfo.cmake"
  "/root/repo/build/src/baseline/CMakeFiles/oa_baseline.dir/DependInfo.cmake"
  "/root/repo/build/src/composer/CMakeFiles/oa_composer.dir/DependInfo.cmake"
  "/root/repo/build/src/adl/CMakeFiles/oa_adl.dir/DependInfo.cmake"
  "/root/repo/build/src/epod/CMakeFiles/oa_epod.dir/DependInfo.cmake"
  "/root/repo/build/src/transforms/CMakeFiles/oa_transforms.dir/DependInfo.cmake"
  "/root/repo/build/src/deps/CMakeFiles/oa_deps.dir/DependInfo.cmake"
  "/root/repo/build/src/gpusim/CMakeFiles/oa_gpusim.dir/DependInfo.cmake"
  "/root/repo/build/src/blas3/CMakeFiles/oa_blas3.dir/DependInfo.cmake"
  "/root/repo/build/src/ir/CMakeFiles/oa_ir.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/oa_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
