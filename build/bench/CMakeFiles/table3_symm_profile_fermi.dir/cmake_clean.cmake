file(REMOVE_RECURSE
  "CMakeFiles/table3_symm_profile_fermi.dir/table3_symm_profile_fermi.cpp.o"
  "CMakeFiles/table3_symm_profile_fermi.dir/table3_symm_profile_fermi.cpp.o.d"
  "table3_symm_profile_fermi"
  "table3_symm_profile_fermi.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table3_symm_profile_fermi.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
