# Empty compiler generated dependencies file for table3_symm_profile_fermi.
# This may be replaced when dependencies are built.
