file(REMOVE_RECURSE
  "CMakeFiles/table1_symm_profile_9800.dir/table1_symm_profile_9800.cpp.o"
  "CMakeFiles/table1_symm_profile_9800.dir/table1_symm_profile_9800.cpp.o.d"
  "table1_symm_profile_9800"
  "table1_symm_profile_9800.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table1_symm_profile_9800.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
