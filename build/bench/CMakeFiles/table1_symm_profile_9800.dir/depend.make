# Empty dependencies file for table1_symm_profile_9800.
# This may be replaced when dependencies are built.
