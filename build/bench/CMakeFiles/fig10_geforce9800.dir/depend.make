# Empty dependencies file for fig10_geforce9800.
# This may be replaced when dependencies are built.
