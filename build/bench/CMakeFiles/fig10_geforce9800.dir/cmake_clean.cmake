file(REMOVE_RECURSE
  "CMakeFiles/fig10_geforce9800.dir/fig10_geforce9800.cpp.o"
  "CMakeFiles/fig10_geforce9800.dir/fig10_geforce9800.cpp.o.d"
  "fig10_geforce9800"
  "fig10_geforce9800.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig10_geforce9800.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
