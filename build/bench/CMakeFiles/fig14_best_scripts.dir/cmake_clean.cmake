file(REMOVE_RECURSE
  "CMakeFiles/fig14_best_scripts.dir/fig14_best_scripts.cpp.o"
  "CMakeFiles/fig14_best_scripts.dir/fig14_best_scripts.cpp.o.d"
  "fig14_best_scripts"
  "fig14_best_scripts.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig14_best_scripts.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
