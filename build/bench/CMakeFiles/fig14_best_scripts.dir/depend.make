# Empty dependencies file for fig14_best_scripts.
# This may be replaced when dependencies are built.
