# Empty compiler generated dependencies file for fig12_fermi.
# This may be replaced when dependencies are built.
