file(REMOVE_RECURSE
  "CMakeFiles/fig12_fermi.dir/fig12_fermi.cpp.o"
  "CMakeFiles/fig12_fermi.dir/fig12_fermi.cpp.o.d"
  "fig12_fermi"
  "fig12_fermi.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig12_fermi.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
