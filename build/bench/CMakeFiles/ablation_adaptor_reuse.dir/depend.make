# Empty dependencies file for ablation_adaptor_reuse.
# This may be replaced when dependencies are built.
