file(REMOVE_RECURSE
  "CMakeFiles/ablation_adaptor_reuse.dir/ablation_adaptor_reuse.cpp.o"
  "CMakeFiles/ablation_adaptor_reuse.dir/ablation_adaptor_reuse.cpp.o.d"
  "ablation_adaptor_reuse"
  "ablation_adaptor_reuse.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_adaptor_reuse.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
