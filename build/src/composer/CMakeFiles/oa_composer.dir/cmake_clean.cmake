file(REMOVE_RECURSE
  "CMakeFiles/oa_composer.dir/composer.cpp.o"
  "CMakeFiles/oa_composer.dir/composer.cpp.o.d"
  "liboa_composer.a"
  "liboa_composer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/oa_composer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
