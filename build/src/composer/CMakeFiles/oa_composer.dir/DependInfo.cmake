
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/composer/composer.cpp" "src/composer/CMakeFiles/oa_composer.dir/composer.cpp.o" "gcc" "src/composer/CMakeFiles/oa_composer.dir/composer.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/adl/CMakeFiles/oa_adl.dir/DependInfo.cmake"
  "/root/repo/build/src/epod/CMakeFiles/oa_epod.dir/DependInfo.cmake"
  "/root/repo/build/src/transforms/CMakeFiles/oa_transforms.dir/DependInfo.cmake"
  "/root/repo/build/src/deps/CMakeFiles/oa_deps.dir/DependInfo.cmake"
  "/root/repo/build/src/ir/CMakeFiles/oa_ir.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/oa_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
