file(REMOVE_RECURSE
  "liboa_composer.a"
)
