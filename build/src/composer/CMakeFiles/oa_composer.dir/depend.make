# Empty dependencies file for oa_composer.
# This may be replaced when dependencies are built.
