# Empty compiler generated dependencies file for oa_baseline.
# This may be replaced when dependencies are built.
