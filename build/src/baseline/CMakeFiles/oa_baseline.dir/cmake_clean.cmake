file(REMOVE_RECURSE
  "CMakeFiles/oa_baseline.dir/baseline.cpp.o"
  "CMakeFiles/oa_baseline.dir/baseline.cpp.o.d"
  "liboa_baseline.a"
  "liboa_baseline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/oa_baseline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
