file(REMOVE_RECURSE
  "liboa_baseline.a"
)
