file(REMOVE_RECURSE
  "liboa_adl.a"
)
