file(REMOVE_RECURSE
  "CMakeFiles/oa_adl.dir/adaptor.cpp.o"
  "CMakeFiles/oa_adl.dir/adaptor.cpp.o.d"
  "liboa_adl.a"
  "liboa_adl.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/oa_adl.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
