# Empty compiler generated dependencies file for oa_adl.
# This may be replaced when dependencies are built.
