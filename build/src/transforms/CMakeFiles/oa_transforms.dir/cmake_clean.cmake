file(REMOVE_RECURSE
  "CMakeFiles/oa_transforms.dir/format_iteration.cpp.o"
  "CMakeFiles/oa_transforms.dir/format_iteration.cpp.o.d"
  "CMakeFiles/oa_transforms.dir/gm_map.cpp.o"
  "CMakeFiles/oa_transforms.dir/gm_map.cpp.o.d"
  "CMakeFiles/oa_transforms.dir/grouping.cpp.o"
  "CMakeFiles/oa_transforms.dir/grouping.cpp.o.d"
  "CMakeFiles/oa_transforms.dir/mem_alloc.cpp.o"
  "CMakeFiles/oa_transforms.dir/mem_alloc.cpp.o.d"
  "CMakeFiles/oa_transforms.dir/registry.cpp.o"
  "CMakeFiles/oa_transforms.dir/registry.cpp.o.d"
  "CMakeFiles/oa_transforms.dir/tiling.cpp.o"
  "CMakeFiles/oa_transforms.dir/tiling.cpp.o.d"
  "CMakeFiles/oa_transforms.dir/triangular.cpp.o"
  "CMakeFiles/oa_transforms.dir/triangular.cpp.o.d"
  "liboa_transforms.a"
  "liboa_transforms.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/oa_transforms.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
