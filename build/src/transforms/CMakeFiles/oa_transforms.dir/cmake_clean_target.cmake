file(REMOVE_RECURSE
  "liboa_transforms.a"
)
