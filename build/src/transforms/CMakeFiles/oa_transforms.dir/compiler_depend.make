# Empty compiler generated dependencies file for oa_transforms.
# This may be replaced when dependencies are built.
