
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/transforms/format_iteration.cpp" "src/transforms/CMakeFiles/oa_transforms.dir/format_iteration.cpp.o" "gcc" "src/transforms/CMakeFiles/oa_transforms.dir/format_iteration.cpp.o.d"
  "/root/repo/src/transforms/gm_map.cpp" "src/transforms/CMakeFiles/oa_transforms.dir/gm_map.cpp.o" "gcc" "src/transforms/CMakeFiles/oa_transforms.dir/gm_map.cpp.o.d"
  "/root/repo/src/transforms/grouping.cpp" "src/transforms/CMakeFiles/oa_transforms.dir/grouping.cpp.o" "gcc" "src/transforms/CMakeFiles/oa_transforms.dir/grouping.cpp.o.d"
  "/root/repo/src/transforms/mem_alloc.cpp" "src/transforms/CMakeFiles/oa_transforms.dir/mem_alloc.cpp.o" "gcc" "src/transforms/CMakeFiles/oa_transforms.dir/mem_alloc.cpp.o.d"
  "/root/repo/src/transforms/registry.cpp" "src/transforms/CMakeFiles/oa_transforms.dir/registry.cpp.o" "gcc" "src/transforms/CMakeFiles/oa_transforms.dir/registry.cpp.o.d"
  "/root/repo/src/transforms/tiling.cpp" "src/transforms/CMakeFiles/oa_transforms.dir/tiling.cpp.o" "gcc" "src/transforms/CMakeFiles/oa_transforms.dir/tiling.cpp.o.d"
  "/root/repo/src/transforms/triangular.cpp" "src/transforms/CMakeFiles/oa_transforms.dir/triangular.cpp.o" "gcc" "src/transforms/CMakeFiles/oa_transforms.dir/triangular.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/ir/CMakeFiles/oa_ir.dir/DependInfo.cmake"
  "/root/repo/build/src/deps/CMakeFiles/oa_deps.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/oa_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
