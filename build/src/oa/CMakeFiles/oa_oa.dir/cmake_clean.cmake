file(REMOVE_RECURSE
  "CMakeFiles/oa_oa.dir/oa.cpp.o"
  "CMakeFiles/oa_oa.dir/oa.cpp.o.d"
  "liboa_oa.a"
  "liboa_oa.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/oa_oa.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
