file(REMOVE_RECURSE
  "liboa_oa.a"
)
