# Empty compiler generated dependencies file for oa_oa.
# This may be replaced when dependencies are built.
