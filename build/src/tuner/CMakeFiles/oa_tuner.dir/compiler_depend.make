# Empty compiler generated dependencies file for oa_tuner.
# This may be replaced when dependencies are built.
