file(REMOVE_RECURSE
  "CMakeFiles/oa_tuner.dir/tuner.cpp.o"
  "CMakeFiles/oa_tuner.dir/tuner.cpp.o.d"
  "liboa_tuner.a"
  "liboa_tuner.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/oa_tuner.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
