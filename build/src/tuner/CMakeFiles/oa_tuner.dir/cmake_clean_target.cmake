file(REMOVE_RECURSE
  "liboa_tuner.a"
)
