file(REMOVE_RECURSE
  "liboa_blas3.a"
)
