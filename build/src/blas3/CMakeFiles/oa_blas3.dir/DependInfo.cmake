
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/blas3/matrix.cpp" "src/blas3/CMakeFiles/oa_blas3.dir/matrix.cpp.o" "gcc" "src/blas3/CMakeFiles/oa_blas3.dir/matrix.cpp.o.d"
  "/root/repo/src/blas3/reference.cpp" "src/blas3/CMakeFiles/oa_blas3.dir/reference.cpp.o" "gcc" "src/blas3/CMakeFiles/oa_blas3.dir/reference.cpp.o.d"
  "/root/repo/src/blas3/routine.cpp" "src/blas3/CMakeFiles/oa_blas3.dir/routine.cpp.o" "gcc" "src/blas3/CMakeFiles/oa_blas3.dir/routine.cpp.o.d"
  "/root/repo/src/blas3/source_ir.cpp" "src/blas3/CMakeFiles/oa_blas3.dir/source_ir.cpp.o" "gcc" "src/blas3/CMakeFiles/oa_blas3.dir/source_ir.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/ir/CMakeFiles/oa_ir.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/oa_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
