file(REMOVE_RECURSE
  "CMakeFiles/oa_blas3.dir/matrix.cpp.o"
  "CMakeFiles/oa_blas3.dir/matrix.cpp.o.d"
  "CMakeFiles/oa_blas3.dir/reference.cpp.o"
  "CMakeFiles/oa_blas3.dir/reference.cpp.o.d"
  "CMakeFiles/oa_blas3.dir/routine.cpp.o"
  "CMakeFiles/oa_blas3.dir/routine.cpp.o.d"
  "CMakeFiles/oa_blas3.dir/source_ir.cpp.o"
  "CMakeFiles/oa_blas3.dir/source_ir.cpp.o.d"
  "liboa_blas3.a"
  "liboa_blas3.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/oa_blas3.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
