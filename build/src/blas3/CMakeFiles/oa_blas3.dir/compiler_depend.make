# Empty compiler generated dependencies file for oa_blas3.
# This may be replaced when dependencies are built.
