# CMake generated Testfile for 
# Source directory: /root/repo/src/blas3
# Build directory: /root/repo/build/src/blas3
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
