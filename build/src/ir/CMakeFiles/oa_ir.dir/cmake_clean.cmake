file(REMOVE_RECURSE
  "CMakeFiles/oa_ir.dir/affine.cpp.o"
  "CMakeFiles/oa_ir.dir/affine.cpp.o.d"
  "CMakeFiles/oa_ir.dir/expr.cpp.o"
  "CMakeFiles/oa_ir.dir/expr.cpp.o.d"
  "CMakeFiles/oa_ir.dir/interval.cpp.o"
  "CMakeFiles/oa_ir.dir/interval.cpp.o.d"
  "CMakeFiles/oa_ir.dir/kernel.cpp.o"
  "CMakeFiles/oa_ir.dir/kernel.cpp.o.d"
  "CMakeFiles/oa_ir.dir/node.cpp.o"
  "CMakeFiles/oa_ir.dir/node.cpp.o.d"
  "CMakeFiles/oa_ir.dir/printer.cpp.o"
  "CMakeFiles/oa_ir.dir/printer.cpp.o.d"
  "CMakeFiles/oa_ir.dir/validate.cpp.o"
  "CMakeFiles/oa_ir.dir/validate.cpp.o.d"
  "liboa_ir.a"
  "liboa_ir.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/oa_ir.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
