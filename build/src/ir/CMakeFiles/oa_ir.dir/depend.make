# Empty dependencies file for oa_ir.
# This may be replaced when dependencies are built.
