
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/ir/affine.cpp" "src/ir/CMakeFiles/oa_ir.dir/affine.cpp.o" "gcc" "src/ir/CMakeFiles/oa_ir.dir/affine.cpp.o.d"
  "/root/repo/src/ir/expr.cpp" "src/ir/CMakeFiles/oa_ir.dir/expr.cpp.o" "gcc" "src/ir/CMakeFiles/oa_ir.dir/expr.cpp.o.d"
  "/root/repo/src/ir/interval.cpp" "src/ir/CMakeFiles/oa_ir.dir/interval.cpp.o" "gcc" "src/ir/CMakeFiles/oa_ir.dir/interval.cpp.o.d"
  "/root/repo/src/ir/kernel.cpp" "src/ir/CMakeFiles/oa_ir.dir/kernel.cpp.o" "gcc" "src/ir/CMakeFiles/oa_ir.dir/kernel.cpp.o.d"
  "/root/repo/src/ir/node.cpp" "src/ir/CMakeFiles/oa_ir.dir/node.cpp.o" "gcc" "src/ir/CMakeFiles/oa_ir.dir/node.cpp.o.d"
  "/root/repo/src/ir/printer.cpp" "src/ir/CMakeFiles/oa_ir.dir/printer.cpp.o" "gcc" "src/ir/CMakeFiles/oa_ir.dir/printer.cpp.o.d"
  "/root/repo/src/ir/validate.cpp" "src/ir/CMakeFiles/oa_ir.dir/validate.cpp.o" "gcc" "src/ir/CMakeFiles/oa_ir.dir/validate.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/support/CMakeFiles/oa_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
