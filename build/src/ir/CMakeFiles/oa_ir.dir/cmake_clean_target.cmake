file(REMOVE_RECURSE
  "liboa_ir.a"
)
