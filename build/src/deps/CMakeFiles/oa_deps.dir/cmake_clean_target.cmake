file(REMOVE_RECURSE
  "liboa_deps.a"
)
