# Empty dependencies file for oa_deps.
# This may be replaced when dependencies are built.
