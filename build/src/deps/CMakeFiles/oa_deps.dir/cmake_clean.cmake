file(REMOVE_RECURSE
  "CMakeFiles/oa_deps.dir/dependence.cpp.o"
  "CMakeFiles/oa_deps.dir/dependence.cpp.o.d"
  "liboa_deps.a"
  "liboa_deps.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/oa_deps.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
