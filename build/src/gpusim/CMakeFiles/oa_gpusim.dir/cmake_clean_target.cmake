file(REMOVE_RECURSE
  "liboa_gpusim.a"
)
