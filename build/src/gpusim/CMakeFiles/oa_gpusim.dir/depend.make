# Empty dependencies file for oa_gpusim.
# This may be replaced when dependencies are built.
