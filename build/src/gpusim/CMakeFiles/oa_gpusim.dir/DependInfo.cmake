
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/gpusim/block_sim.cpp" "src/gpusim/CMakeFiles/oa_gpusim.dir/block_sim.cpp.o" "gcc" "src/gpusim/CMakeFiles/oa_gpusim.dir/block_sim.cpp.o.d"
  "/root/repo/src/gpusim/compiled.cpp" "src/gpusim/CMakeFiles/oa_gpusim.dir/compiled.cpp.o" "gcc" "src/gpusim/CMakeFiles/oa_gpusim.dir/compiled.cpp.o.d"
  "/root/repo/src/gpusim/counters.cpp" "src/gpusim/CMakeFiles/oa_gpusim.dir/counters.cpp.o" "gcc" "src/gpusim/CMakeFiles/oa_gpusim.dir/counters.cpp.o.d"
  "/root/repo/src/gpusim/device.cpp" "src/gpusim/CMakeFiles/oa_gpusim.dir/device.cpp.o" "gcc" "src/gpusim/CMakeFiles/oa_gpusim.dir/device.cpp.o.d"
  "/root/repo/src/gpusim/simulator.cpp" "src/gpusim/CMakeFiles/oa_gpusim.dir/simulator.cpp.o" "gcc" "src/gpusim/CMakeFiles/oa_gpusim.dir/simulator.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/ir/CMakeFiles/oa_ir.dir/DependInfo.cmake"
  "/root/repo/build/src/blas3/CMakeFiles/oa_blas3.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/oa_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
