file(REMOVE_RECURSE
  "CMakeFiles/oa_gpusim.dir/block_sim.cpp.o"
  "CMakeFiles/oa_gpusim.dir/block_sim.cpp.o.d"
  "CMakeFiles/oa_gpusim.dir/compiled.cpp.o"
  "CMakeFiles/oa_gpusim.dir/compiled.cpp.o.d"
  "CMakeFiles/oa_gpusim.dir/counters.cpp.o"
  "CMakeFiles/oa_gpusim.dir/counters.cpp.o.d"
  "CMakeFiles/oa_gpusim.dir/device.cpp.o"
  "CMakeFiles/oa_gpusim.dir/device.cpp.o.d"
  "CMakeFiles/oa_gpusim.dir/simulator.cpp.o"
  "CMakeFiles/oa_gpusim.dir/simulator.cpp.o.d"
  "liboa_gpusim.a"
  "liboa_gpusim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/oa_gpusim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
