file(REMOVE_RECURSE
  "CMakeFiles/oa_support.dir/log.cpp.o"
  "CMakeFiles/oa_support.dir/log.cpp.o.d"
  "CMakeFiles/oa_support.dir/status.cpp.o"
  "CMakeFiles/oa_support.dir/status.cpp.o.d"
  "CMakeFiles/oa_support.dir/strings.cpp.o"
  "CMakeFiles/oa_support.dir/strings.cpp.o.d"
  "CMakeFiles/oa_support.dir/table.cpp.o"
  "CMakeFiles/oa_support.dir/table.cpp.o.d"
  "CMakeFiles/oa_support.dir/thread_pool.cpp.o"
  "CMakeFiles/oa_support.dir/thread_pool.cpp.o.d"
  "liboa_support.a"
  "liboa_support.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/oa_support.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
