# Empty compiler generated dependencies file for oa_support.
# This may be replaced when dependencies are built.
