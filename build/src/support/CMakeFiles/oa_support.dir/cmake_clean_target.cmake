file(REMOVE_RECURSE
  "liboa_support.a"
)
