file(REMOVE_RECURSE
  "CMakeFiles/oagen.dir/oagen_main.cpp.o"
  "CMakeFiles/oagen.dir/oagen_main.cpp.o.d"
  "oagen"
  "oagen.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/oagen.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
