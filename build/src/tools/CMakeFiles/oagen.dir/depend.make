# Empty dependencies file for oagen.
# This may be replaced when dependencies are built.
