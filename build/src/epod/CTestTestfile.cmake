# CMake generated Testfile for 
# Source directory: /root/repo/src/epod
# Build directory: /root/repo/build/src/epod
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
