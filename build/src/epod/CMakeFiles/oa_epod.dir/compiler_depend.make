# Empty compiler generated dependencies file for oa_epod.
# This may be replaced when dependencies are built.
