file(REMOVE_RECURSE
  "CMakeFiles/oa_epod.dir/script.cpp.o"
  "CMakeFiles/oa_epod.dir/script.cpp.o.d"
  "liboa_epod.a"
  "liboa_epod.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/oa_epod.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
