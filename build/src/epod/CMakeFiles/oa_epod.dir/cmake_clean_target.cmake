file(REMOVE_RECURSE
  "liboa_epod.a"
)
