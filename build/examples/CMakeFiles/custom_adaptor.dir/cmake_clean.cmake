file(REMOVE_RECURSE
  "CMakeFiles/custom_adaptor.dir/custom_adaptor.cpp.o"
  "CMakeFiles/custom_adaptor.dir/custom_adaptor.cpp.o.d"
  "custom_adaptor"
  "custom_adaptor.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/custom_adaptor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
