# Empty compiler generated dependencies file for custom_adaptor.
# This may be replaced when dependencies are built.
