# Empty compiler generated dependencies file for inspect_transforms.
# This may be replaced when dependencies are built.
