file(REMOVE_RECURSE
  "CMakeFiles/inspect_transforms.dir/inspect_transforms.cpp.o"
  "CMakeFiles/inspect_transforms.dir/inspect_transforms.cpp.o.d"
  "inspect_transforms"
  "inspect_transforms.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/inspect_transforms.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
