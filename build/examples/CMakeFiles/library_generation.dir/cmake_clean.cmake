file(REMOVE_RECURSE
  "CMakeFiles/library_generation.dir/library_generation.cpp.o"
  "CMakeFiles/library_generation.dir/library_generation.cpp.o.d"
  "library_generation"
  "library_generation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/library_generation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
