# Empty dependencies file for library_generation.
# This may be replaced when dependencies are built.
