# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/support_test[1]_include.cmake")
include("/root/repo/build/tests/ir_test[1]_include.cmake")
include("/root/repo/build/tests/deps_test[1]_include.cmake")
include("/root/repo/build/tests/blas3_test[1]_include.cmake")
include("/root/repo/build/tests/transforms_test[1]_include.cmake")
include("/root/repo/build/tests/gpusim_test[1]_include.cmake")
include("/root/repo/build/tests/epod_adl_test[1]_include.cmake")
include("/root/repo/build/tests/composer_test[1]_include.cmake")
include("/root/repo/build/tests/baseline_test[1]_include.cmake")
include("/root/repo/build/tests/tuner_test[1]_include.cmake")
include("/root/repo/build/tests/oa_test[1]_include.cmake")
include("/root/repo/build/tests/integration_test[1]_include.cmake")
include("/root/repo/build/tests/simt_model_test[1]_include.cmake")
include("/root/repo/build/tests/pipeline_property_test[1]_include.cmake")
include("/root/repo/build/tests/regression_test[1]_include.cmake")
include("/root/repo/build/tests/syrk_extension_test[1]_include.cmake")
include("/root/repo/build/tests/deps_direction_test[1]_include.cmake")
include("/root/repo/build/tests/ir_corners_test[1]_include.cmake")
include("/root/repo/build/tests/counters_consistency_test[1]_include.cmake")
