file(REMOVE_RECURSE
  "CMakeFiles/deps_direction_test.dir/deps_direction_test.cpp.o"
  "CMakeFiles/deps_direction_test.dir/deps_direction_test.cpp.o.d"
  "deps_direction_test"
  "deps_direction_test.pdb"
  "deps_direction_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/deps_direction_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
