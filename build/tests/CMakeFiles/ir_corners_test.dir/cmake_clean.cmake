file(REMOVE_RECURSE
  "CMakeFiles/ir_corners_test.dir/ir_corners_test.cpp.o"
  "CMakeFiles/ir_corners_test.dir/ir_corners_test.cpp.o.d"
  "ir_corners_test"
  "ir_corners_test.pdb"
  "ir_corners_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ir_corners_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
