# Empty compiler generated dependencies file for ir_corners_test.
# This may be replaced when dependencies are built.
