file(REMOVE_RECURSE
  "CMakeFiles/deps_test.dir/deps_test.cpp.o"
  "CMakeFiles/deps_test.dir/deps_test.cpp.o.d"
  "deps_test"
  "deps_test.pdb"
  "deps_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/deps_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
