# Empty compiler generated dependencies file for deps_test.
# This may be replaced when dependencies are built.
