
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/deps_test.cpp" "tests/CMakeFiles/deps_test.dir/deps_test.cpp.o" "gcc" "tests/CMakeFiles/deps_test.dir/deps_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/deps/CMakeFiles/oa_deps.dir/DependInfo.cmake"
  "/root/repo/build/src/blas3/CMakeFiles/oa_blas3.dir/DependInfo.cmake"
  "/root/repo/build/src/ir/CMakeFiles/oa_ir.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/oa_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
