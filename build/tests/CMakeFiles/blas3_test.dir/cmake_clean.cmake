file(REMOVE_RECURSE
  "CMakeFiles/blas3_test.dir/blas3_test.cpp.o"
  "CMakeFiles/blas3_test.dir/blas3_test.cpp.o.d"
  "blas3_test"
  "blas3_test.pdb"
  "blas3_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/blas3_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
