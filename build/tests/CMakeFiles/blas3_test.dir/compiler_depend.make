# Empty compiler generated dependencies file for blas3_test.
# This may be replaced when dependencies are built.
