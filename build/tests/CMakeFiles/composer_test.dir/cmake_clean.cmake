file(REMOVE_RECURSE
  "CMakeFiles/composer_test.dir/composer_test.cpp.o"
  "CMakeFiles/composer_test.dir/composer_test.cpp.o.d"
  "composer_test"
  "composer_test.pdb"
  "composer_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/composer_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
