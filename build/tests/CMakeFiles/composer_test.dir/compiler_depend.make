# Empty compiler generated dependencies file for composer_test.
# This may be replaced when dependencies are built.
