file(REMOVE_RECURSE
  "CMakeFiles/epod_adl_test.dir/epod_adl_test.cpp.o"
  "CMakeFiles/epod_adl_test.dir/epod_adl_test.cpp.o.d"
  "epod_adl_test"
  "epod_adl_test.pdb"
  "epod_adl_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/epod_adl_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
