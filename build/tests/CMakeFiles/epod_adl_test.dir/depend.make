# Empty dependencies file for epod_adl_test.
# This may be replaced when dependencies are built.
