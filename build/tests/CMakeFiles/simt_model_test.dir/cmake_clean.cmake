file(REMOVE_RECURSE
  "CMakeFiles/simt_model_test.dir/simt_model_test.cpp.o"
  "CMakeFiles/simt_model_test.dir/simt_model_test.cpp.o.d"
  "simt_model_test"
  "simt_model_test.pdb"
  "simt_model_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/simt_model_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
