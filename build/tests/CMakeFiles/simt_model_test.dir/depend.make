# Empty dependencies file for simt_model_test.
# This may be replaced when dependencies are built.
