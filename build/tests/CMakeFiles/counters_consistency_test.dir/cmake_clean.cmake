file(REMOVE_RECURSE
  "CMakeFiles/counters_consistency_test.dir/counters_consistency_test.cpp.o"
  "CMakeFiles/counters_consistency_test.dir/counters_consistency_test.cpp.o.d"
  "counters_consistency_test"
  "counters_consistency_test.pdb"
  "counters_consistency_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/counters_consistency_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
