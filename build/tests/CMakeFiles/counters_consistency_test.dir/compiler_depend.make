# Empty compiler generated dependencies file for counters_consistency_test.
# This may be replaced when dependencies are built.
