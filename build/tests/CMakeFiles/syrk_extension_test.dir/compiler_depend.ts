# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for syrk_extension_test.
