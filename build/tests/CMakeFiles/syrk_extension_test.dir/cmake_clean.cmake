file(REMOVE_RECURSE
  "CMakeFiles/syrk_extension_test.dir/syrk_extension_test.cpp.o"
  "CMakeFiles/syrk_extension_test.dir/syrk_extension_test.cpp.o.d"
  "syrk_extension_test"
  "syrk_extension_test.pdb"
  "syrk_extension_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/syrk_extension_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
