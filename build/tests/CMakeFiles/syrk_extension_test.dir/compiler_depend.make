# Empty compiler generated dependencies file for syrk_extension_test.
# This may be replaced when dependencies are built.
