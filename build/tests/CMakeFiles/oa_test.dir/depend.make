# Empty dependencies file for oa_test.
# This may be replaced when dependencies are built.
