file(REMOVE_RECURSE
  "CMakeFiles/oa_test.dir/oa_test.cpp.o"
  "CMakeFiles/oa_test.dir/oa_test.cpp.o.d"
  "oa_test"
  "oa_test.pdb"
  "oa_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/oa_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
